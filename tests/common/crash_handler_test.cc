#include "common/crash_handler.h"

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"

// The fork + fatal-signal exercise is meaningless under sanitizers: their
// runtimes install their own signal machinery and dislike dying forked
// children.  The SIGQUIT (live probe) path still runs everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define USEP_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define USEP_SANITIZED 1
#endif
#endif

namespace usep {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CrashHandlerTest, DumpFlightNowIsANoOpWhenUninstalled) {
  InstallFlightDumpHandlers(nullptr, "");  // Reset any previous install.
  EXPECT_FALSE(DumpFlightNow("unit_test"));
}

TEST(CrashHandlerTest, DumpFlightNowWritesTheInstalledPath) {
  const std::string path = TempPath("crash_on_demand.json");
  std::remove(path.c_str());
  obs::FlightRecorder flight;
  flight.RecordInstant("test/event", "before-dump", 1);
  InstallFlightDumpHandlers(&flight, path);
  EXPECT_TRUE(DumpFlightNow("on_demand"));
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\":\"on_demand\""), std::string::npos);
  EXPECT_NE(dump.find("test/event"), std::string::npos);
  InstallFlightDumpHandlers(nullptr, "");
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, SigquitDumpsAndTheProcessContinues) {
  const std::string path = TempPath("crash_sigquit.json");
  std::remove(path.c_str());
  obs::FlightRecorder flight;
  flight.RecordInstant("test/pre-quit", nullptr, 7);
  InstallFlightDumpHandlers(&flight, path);

  // The live probe: SIGQUIT dumps the ring and RETURNS — the process keeps
  // serving.  Reaching the assertions below is itself the liveness check.
  ASSERT_EQ(::raise(SIGQUIT), 0);

  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\":\"SIGQUIT\""), std::string::npos);
  EXPECT_NE(dump.find("test/pre-quit"), std::string::npos);

  // Still installed: a second probe overwrites with fresher contents.
  flight.RecordInstant("test/post-quit", nullptr, 8);
  ASSERT_EQ(::raise(SIGQUIT), 0);
  EXPECT_NE(ReadFile(path).find("test/post-quit"), std::string::npos);

  InstallFlightDumpHandlers(nullptr, "");
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, UninstallRestoresDefaultDispositionState) {
  obs::FlightRecorder flight;
  const std::string path = TempPath("crash_uninstall.json");
  std::remove(path.c_str());
  InstallFlightDumpHandlers(&flight, path);
  InstallFlightDumpHandlers(nullptr, "");
  EXPECT_FALSE(DumpFlightNow("after_uninstall"));
  EXPECT_FALSE(std::ifstream(path).good());
}

#if !defined(USEP_SANITIZED)
TEST(CrashHandlerTest, FatalSignalDumpsFromTheDyingProcess) {
  const std::string path = TempPath("crash_fatal.json");
  std::remove(path.c_str());

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The dying process: record evidence, install, and abort.  The handler
    // must write the dump, then the process dies by SIGABRT as intended.
    obs::FlightRecorder flight;
    flight.RecordInstant("test/last-words", "about-to-abort", 13);
    InstallFlightDumpHandlers(&flight, path);
    std::abort();
    _exit(0);  // Unreachable.
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\":\"SIGABRT\""), std::string::npos);
  EXPECT_NE(dump.find("test/last-words"), std::string::npos);
  std::remove(path.c_str());
}
#endif  // !USEP_SANITIZED

}  // namespace
}  // namespace usep
