#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double previous = first;
  for (int i = 0; i < 100; ++i) {
    const double now = stopwatch.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double seconds = stopwatch.ElapsedSeconds();
  const double millis = stopwatch.ElapsedMillis();
  const int64_t nanos = stopwatch.ElapsedNanos();
  EXPECT_GE(millis, seconds * 1e3);  // Later reading, same clock.
  EXPECT_GE(static_cast<double>(nanos), millis * 1e6 * 0.5);
  EXPECT_GT(nanos, 0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i);
  const double before = stopwatch.ElapsedSeconds();
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedSeconds(), before + 1e-3);
}

// Spins until the calling thread has accrued ~`seconds` of CPU time.
void BurnThreadCpu(double seconds) {
  const double until = ThreadCpuSeconds() + seconds;
  volatile double sink = 0.0;
  while (ThreadCpuSeconds() < until) {
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  }
}

TEST(CpuStopwatchTest, BusyLoopAccruesThreadCpuTime) {
  CpuStopwatch cpu(CpuStopwatch::Kind::kThread);
  BurnThreadCpu(0.02);
  EXPECT_GE(cpu.ElapsedSeconds(), 0.02);
  // A 20ms burn should not read as minutes of CPU (sanity on the units).
  EXPECT_LT(cpu.ElapsedSeconds(), 10.0);
}

TEST(CpuStopwatchTest, ProcessCoversThread) {
  // Process CPU time includes the calling thread, so over the same region
  // the process reading is at least the thread reading (any other threads
  // only add to it).  A small slop absorbs the two separate clock reads.
  CpuStopwatch process(CpuStopwatch::Kind::kProcess);
  CpuStopwatch thread(CpuStopwatch::Kind::kThread);
  BurnThreadCpu(0.02);
  const double thread_elapsed = thread.ElapsedSeconds();
  const double process_elapsed = process.ElapsedSeconds();
  EXPECT_GE(process_elapsed, thread_elapsed - 1e-3);
}

TEST(CpuStopwatchTest, ElapsedIsMonotone) {
  CpuStopwatch cpu(CpuStopwatch::Kind::kThread);
  double previous = cpu.ElapsedSeconds();
  EXPECT_GE(previous, 0.0);
  volatile double sink = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
    const double now = cpu.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(CpuStopwatchTest, RestartResets) {
  CpuStopwatch cpu(CpuStopwatch::Kind::kThread);
  BurnThreadCpu(0.02);
  const double before = cpu.ElapsedSeconds();
  EXPECT_GE(before, 0.02);
  cpu.Restart();
  EXPECT_LT(cpu.ElapsedSeconds(), before);
}

TEST(CpuStopwatchTest, UnitsAgree) {
  CpuStopwatch cpu(CpuStopwatch::Kind::kThread);
  BurnThreadCpu(0.01);
  const double millis = cpu.ElapsedMillis();
  const double seconds = cpu.ElapsedSeconds();
  EXPECT_GE(millis, seconds * 1e3 * 0.5);
  EXPECT_LE(millis, (seconds + 1.0) * 1e3);
}

TEST(CpuStopwatchTest, CpuDoesNotWildlyExceedWall) {
  // On one thread, CPU time cannot outpace wall time by more than scheduler
  // noise; use a generous factor to stay robust on loaded CI machines.
  Stopwatch wall;
  CpuStopwatch cpu(CpuStopwatch::Kind::kThread);
  BurnThreadCpu(0.02);
  EXPECT_LE(cpu.ElapsedSeconds(), wall.ElapsedSeconds() * 2.0 + 0.01);
}

}  // namespace
}  // namespace usep
