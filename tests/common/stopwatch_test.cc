#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double previous = first;
  for (int i = 0; i < 100; ++i) {
    const double now = stopwatch.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double seconds = stopwatch.ElapsedSeconds();
  const double millis = stopwatch.ElapsedMillis();
  const int64_t nanos = stopwatch.ElapsedNanos();
  EXPECT_GE(millis, seconds * 1e3);  // Later reading, same clock.
  EXPECT_GE(static_cast<double>(nanos), millis * 1e6 * 0.5);
  EXPECT_GT(nanos, 0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i);
  const double before = stopwatch.ElapsedSeconds();
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace usep
