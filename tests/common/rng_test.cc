#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const int64_t value = rng.UniformInt(10, 15);
    ASSERT_GE(value, 10);
    ASSERT_LE(value, 15);
    ++counts[value - 10];
  }
  for (const int count : counts) {
    EXPECT_GT(count, 9000);  // Expected 10000 each; loose 10% floor.
    EXPECT_LT(count, 11000);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntHandlesNegativeBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = rng.UniformInt(-10, -1);
    EXPECT_GE(value, -10);
    EXPECT_LE(value, -1);
  }
}

TEST(RngDeathTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(5, 4), "Check failed");
}

TEST(RngTest, UniformDoubleWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParametersShiftsAndScales) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentOfParentAdvancement) {
  Rng parent1(99);
  Rng fork1 = parent1.Fork();

  Rng parent2(99);
  Rng fork2 = parent2.Fork();
  // Advance parent2 only; fork2 must still match fork1.
  for (int i = 0; i < 10; ++i) parent2.NextUint64();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fork1.NextUint64(), fork2.NextUint64());
  }
}

TEST(RngTest, ForkedStreamDiffersFromParent) {
  Rng parent(7);
  Rng fork = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == fork.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace usep
