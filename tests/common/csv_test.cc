#include "common/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(CsvWriterTest, PlainFields) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(writer.rows_written(), 1);
}

TEST(CsvWriterTest, QuotesFieldsWithSeparators) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"a,b", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",plain\n");
}

TEST(CsvWriterTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriterTest, CustomSeparator) {
  std::ostringstream out;
  CsvWriter writer(&out, ';');
  writer.WriteRow({"a;b", "c"});
  EXPECT_EQ(out.str(), "\"a;b\";c\n");
}

TEST(ParseCsvTest, SimpleRows) {
  const auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  const auto rows = ParseCsv("a,b");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvTest, QuotedFieldWithSeparatorAndNewline) {
  const auto rows = ParseCsv("\"a,b\nnext\",c\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a,b\nnext", "c"}));
}

TEST(ParseCsvTest, DoubledQuotes) {
  const auto rows = ParseCsv("\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "say \"hi\"");
}

TEST(ParseCsvTest, EmptyFields) {
  const auto rows = ParseCsv("a,,c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsvTest, CrLfLineEndings) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("\"never closed\n").ok());
}

TEST(ParseCsvTest, RoundTripsWriterOutput) {
  std::ostringstream out;
  CsvWriter writer(&out);
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with \"quote\"", "multi\nline"};
  writer.WriteRow(original);
  const auto rows = ParseCsv(out.str());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], original);
}

}  // namespace
}  // namespace usep
