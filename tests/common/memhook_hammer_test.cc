// Hammers the memhook counters from ThreadPool::ParallelFor workers — the
// exact concurrency shape the planners produce — and checks no update is
// lost.  Linked against usep_memhook (like MemhookTest, it is excluded from
// the sanitizer CI jobs, where the hook is deliberately inert so ASan/TSan
// keep their own allocator interposition).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/memhook.h"
#include "common/thread_pool.h"
#include "obs/alloc_stats.h"

namespace usep {
namespace {

TEST(MemhookHammerTest, ParallelForAllocationsAreAllCounted) {
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "memhook inert (sanitizer build?)";
  }

  constexpr int kThreads = 8;
  constexpr int64_t kTasks = 64;
  constexpr int kAllocationsPerTask = 2000;
  constexpr size_t kBlock = 128;

  const size_t allocations_before = memhook::TotalAllocations();
  const size_t bytes_before = memhook::CurrentBytes();

  ThreadPool pool(kThreads);
  pool.ParallelFor(0, kTasks, static_cast<int>(kTasks),
                   [](int /*block*/, int64_t begin, int64_t end) {
                     for (int64_t task = begin; task < end; ++task) {
                       for (int i = 0; i < kAllocationsPerTask; ++i) {
                         void* p = ::operator new(kBlock);
                         ::operator delete(p);
                       }
                     }
                   });

  // fetch_add never loses an increment: the allocation count moved by at
  // least our own allocations (gtest/pool internals may add more).
  EXPECT_GE(memhook::TotalAllocations(),
            allocations_before + kTasks * kAllocationsPerTask);
  // Every hammer allocation was freed, so current is back near baseline
  // (the pool's worker structures are gone once it destructs below).
  EXPECT_LE(memhook::CurrentBytes(), bytes_before + (1 << 20));
}

TEST(MemhookHammerTest, PeakNeverBelowAnyThreadsHighWater) {
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "memhook inert (sanitizer build?)";
  }

  static constexpr size_t kBig = 1 << 20;
  memhook::ResetPeak();
  const size_t peak_before = memhook::PeakBytes();

  ThreadPool pool(4);
  pool.ParallelFor(0, 16, 16, [](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      // One big live block per task; the CAS loop must record at least one
      // of these peaks even under contention.
      std::vector<char> block(kBig);
      block[0] = static_cast<char>(task);
      ASSERT_GE(memhook::PeakBytes(), kBig);
    }
  });

  EXPECT_GE(memhook::PeakBytes(), peak_before + kBig);
}

TEST(MemhookHammerTest, MixedAllocFreeKeepsCurrentExact) {
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "memhook inert (sanitizer build?)";
  }

  const size_t bytes_before = memhook::CurrentBytes();
  ThreadPool pool(8);
  pool.ParallelFor(0, 32, 32, [](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      // Varying sizes so blocks interleave alloc and free traffic.
      std::vector<void*> live;
      live.reserve(64);
      for (int i = 0; i < 64; ++i) {
        live.push_back(::operator new(static_cast<size_t>(16 + 8 * i)));
      }
      for (void* p : live) ::operator delete(p);
    }
  });
  EXPECT_LE(memhook::CurrentBytes(), bytes_before + (1 << 20));
}

TEST(MemhookHammerTest, PerThreadAllocStatsCountOwnTrafficExactly) {
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "memhook inert (sanitizer build?)";
  }

  constexpr int kAllocations = 5000;
  constexpr size_t kBlock = 96;

  // The global counters see every thread; the obs::allocstats counters must
  // attribute to the allocating thread only — that is the whole point of
  // the span-level allocation attribution.
  ThreadPool pool(4);
  std::atomic<int> exact{0};
  pool.ParallelFor(0, 8, 8, [&exact](int /*block*/, int64_t begin,
                                     int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      const uint64_t bytes_before = obs::allocstats::ThreadAllocatedBytes();
      const uint64_t count_before = obs::allocstats::ThreadAllocations();
      const uint64_t freed_before = obs::allocstats::ThreadFreedBytes();
      for (int i = 0; i < kAllocations; ++i) {
        void* p = ::operator new(kBlock);
        ::operator delete(p);
      }
      // This thread did exactly kAllocations of >= kBlock bytes; nothing
      // another worker allocates can leak into these deltas.  (">=": the
      // allocator may round sizes up, and the loop body itself is
      // allocation-free.)
      const uint64_t bytes = obs::allocstats::ThreadAllocatedBytes();
      const uint64_t count = obs::allocstats::ThreadAllocations();
      const uint64_t freed = obs::allocstats::ThreadFreedBytes();
      if (count - count_before == kAllocations &&
          bytes - bytes_before >= kAllocations * kBlock &&
          freed - freed_before >= kAllocations * kBlock) {
        exact.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(exact.load(), 8);
  EXPECT_TRUE(obs::allocstats::Active());
}

TEST(MemhookHammerTest, ReentrancyGuardIsInertOutsideTheHook) {
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "memhook inert (sanitizer build?)";
  }

  // InHook() is only ever true INSIDE RecordAlloc/RecordFree (where the
  // SIGPROF sampler reads it); from normal code it must read false even
  // right after heavy allocator traffic on this thread.
  std::vector<char> churn(1 << 16);
  churn[0] = 1;
  EXPECT_FALSE(obs::allocstats::InHook());

  // The suppressed-recursion counter is monotonic and, in a plain test
  // binary (no allocating signal handlers), hammering the allocator from
  // many threads must not produce ANY suppressed entries: the guard exists
  // for reentrancy, not for plain concurrency.
  const uint64_t reentrant_before = obs::allocstats::ReentrantEntries();
  ThreadPool pool(8);
  pool.ParallelFor(0, 32, 32, [](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      for (int i = 0; i < 1000; ++i) {
        void* p = ::operator new(static_cast<size_t>(32 + task));
        ::operator delete(p);
      }
      EXPECT_FALSE(obs::allocstats::InHook());
    }
  });
  EXPECT_EQ(obs::allocstats::ReentrantEntries(), reentrant_before);
}

}  // namespace
}  // namespace usep
