#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace usep {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPoolTest, WorkersSurviveThrowingTasks) {
  // A throwing task must not kill its worker: later tasks still run.
  ThreadPool pool(1);
  std::future<void> bad = pool.Submit([] { throw std::logic_error("x"); });
  EXPECT_THROW(bad.get(), std::logic_error);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Futures dropped: the destructor must still run (or fail) every task
    // and join without hanging.
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- ParallelFor: partition correctness and determinism -------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*num_blocks=*/7,
                   [&](int /*block*/, int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1);
                     }
                   });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPartitionIsStatic) {
  // The block -> [begin, end) mapping must depend only on (count,
  // num_blocks): block b covers [b*q + min(b, r), ...), first r blocks one
  // element longer.  Record it twice and require identical results.
  ThreadPool pool(3);
  const auto record = [&pool](int64_t n, int num_blocks) {
    std::vector<std::pair<int64_t, int64_t>> blocks(num_blocks, {-1, -1});
    pool.ParallelFor(0, n, num_blocks,
                     [&](int block, int64_t begin, int64_t end) {
                       blocks[block] = {begin, end};
                     });
    return blocks;
  };
  const auto first = record(10, 4);
  EXPECT_EQ(first, record(10, 4));
  const std::vector<std::pair<int64_t, int64_t>> expected = {
      {0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(first, expected);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 4, [&](int, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // More blocks than elements: clamped, every element visited once.
  std::vector<int> hits(3, 0);
  pool.ParallelFor(0, 3, 16, [&](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i]++;
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<int> hits(20, 0);
  pool.ParallelFor(10, 20, 3, [&](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i]++;
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[i], 0);
  for (int i = 10; i < 20; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestBlockError) {
  ThreadPool pool(4);
  // Two failing blocks; the lowest-indexed one must win deterministically.
  for (int trial = 0; trial < 20; ++trial) {
    try {
      pool.ParallelFor(0, 8, 8, [](int block, int64_t, int64_t) {
        if (block == 2) throw std::runtime_error("block-2");
        if (block == 6) throw std::runtime_error("block-6");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "block-2");
    }
  }
}

TEST(ThreadPoolTest, ParallelForFinishesEveryBlockDespiteError) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(0, 16, 16,
                                [&](int block, int64_t, int64_t) {
                                  if (block == 0) {
                                    throw std::runtime_error("early");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // No block is skipped just because another one failed.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPoolTest, ParallelForUsableFromWorkerThread) {
  // Nested use must not deadlock: the inner caller claims blocks itself.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.Submit([&] {
      pool.ParallelFor(0, 100, 4,
                       [&](int /*block*/, int64_t begin, int64_t end) {
                         total.fetch_add(static_cast<int>(end - begin));
                       });
    }).get();
  EXPECT_EQ(total.load(), 100);
}

// --- Cancellation ---------------------------------------------------------

TEST(ThreadPoolTest, CancellationDiscardsQueuedSubmits) {
  CancellationToken token;
  ThreadPool pool(1, token);

  // Block the single worker so everything else stays queued; wait until the
  // blocker actually started, otherwise Cancel() could discard it too.
  std::promise<void> release;
  std::future<void> released = release.get_future();
  std::atomic<bool> started{false};
  std::future<void> blocker = pool.Submit([&released, &started] {
    started = true;
    released.wait();
  });
  while (!started) std::this_thread::yield();

  std::vector<std::future<void>> queued;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    queued.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }

  token.Cancel();
  EXPECT_TRUE(pool.cancelled());
  release.set_value();
  blocker.get();

  // Every queued task is discarded: futures fail, bodies never run.
  for (auto& f : queued) {
    EXPECT_THROW(f.get(), std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, CancelledPoolStillCompletesParallelFor) {
  // ParallelFor is cancellation-proof: the caller runs whatever the workers
  // refuse, so every block still executes exactly once.
  CancellationToken token;
  token.Cancel();
  ThreadPool pool(4, token);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, 64, 8, [&](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, CancelledPoolDestructsCleanly) {
  CancellationToken token;
  auto pool = std::make_unique<ThreadPool>(4, token);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool->Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }));
  }
  token.Cancel();
  pool.reset();  // Must join without hanging; queued futures all resolve.
  int completed = 0;
  int discarded = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++completed;
    } catch (const std::runtime_error&) {
      ++discarded;
    }
  }
  EXPECT_EQ(completed + discarded, 100);
}

// --- SplitSeeds -----------------------------------------------------------

TEST(SplitSeedsTest, DeterministicAndPrefixStable) {
  const std::vector<uint64_t> eight = SplitSeeds(42, 8);
  ASSERT_EQ(eight.size(), 8u);
  EXPECT_EQ(eight, SplitSeeds(42, 8));
  // Seed i depends only on (base, i) — asking for fewer streams yields a
  // prefix, so trial i sees the same stream at any thread count.
  const std::vector<uint64_t> three = SplitSeeds(42, 3);
  for (size_t i = 0; i < three.size(); ++i) EXPECT_EQ(three[i], eight[i]);
}

TEST(SplitSeedsTest, StreamsAreDistinct) {
  const std::vector<uint64_t> seeds = SplitSeeds(0, 64);
  const std::set<uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
  // Different bases must not collide on the first streams either.
  EXPECT_NE(SplitSeeds(1, 1)[0], SplitSeeds(2, 1)[0]);
}

}  // namespace
}  // namespace usep
