#include "common/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace usep {
namespace {

double SampleMean(const ScalarDistribution& dist, int n, uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += dist.Sample(rng);
  return sum / n;
}

TEST(DistributionsTest, UniformStaysInRangeWithCorrectMean) {
  const ScalarDistribution dist = ScalarDistribution::Uniform(2.0, 6.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
  }
  EXPECT_NEAR(SampleMean(dist, 50000, 2), 4.0, 0.05);
}

TEST(DistributionsTest, NormalTruncatedToRange) {
  const ScalarDistribution dist =
      ScalarDistribution::Normal(0.5, 0.25, 0.0, 1.0);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
  EXPECT_NEAR(SampleMean(dist, 50000, 4), 0.5, 0.01);
}

TEST(DistributionsTest, NormalWithTinyWindowClampsInsteadOfLooping) {
  // Mean far outside [lo, hi]: every draw is rejected, then clamped.
  const ScalarDistribution dist =
      ScalarDistribution::Normal(100.0, 0.1, 0.0, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Sample(rng), 1.0);
  }
}

TEST(DistributionsTest, PowerLowExponentSkewsTowardLowerBound) {
  // F(x) = x^0.5 on [0,1] has mean a/(a+1) = 1/3.
  const ScalarDistribution dist = ScalarDistribution::Power(0.5, 0.0, 1.0);
  EXPECT_NEAR(SampleMean(dist, 100000, 6), 1.0 / 3.0, 0.01);
}

TEST(DistributionsTest, PowerHighExponentSkewsTowardUpperBound) {
  // F(x) = x^4 on [0,1] has mean 4/5.
  const ScalarDistribution dist = ScalarDistribution::Power(4.0, 0.0, 1.0);
  EXPECT_NEAR(SampleMean(dist, 100000, 7), 0.8, 0.01);
}

TEST(DistributionsTest, PowerRespectsShiftedRange) {
  const ScalarDistribution dist = ScalarDistribution::Power(2.0, 10.0, 20.0);
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, 10.0);
    ASSERT_LE(x, 20.0);
  }
}

TEST(DistributionsTest, ParseUniform) {
  const StatusOr<ScalarDistribution> dist =
      ScalarDistribution::Parse("uniform", 0.0, 1.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->kind(), DistributionKind::kUniform);
}

TEST(DistributionsTest, ParseNormalUsesPaperConvention) {
  // Documented contract: mean = midpoint of the range, stddev = 0.25 * mean.
  const StatusOr<ScalarDistribution> dist =
      ScalarDistribution::Parse(" Normal ", 0.0, 1.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->kind(), DistributionKind::kNormal);
  EXPECT_DOUBLE_EQ(dist->mean_param(), 0.5);
  EXPECT_DOUBLE_EQ(dist->stddev_param(), 0.125);
}

TEST(DistributionsTest, ParsePowerWithExponent) {
  const StatusOr<ScalarDistribution> dist =
      ScalarDistribution::Parse("power:0.5", 0.0, 1.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->kind(), DistributionKind::kPower);
  EXPECT_DOUBLE_EQ(dist->exponent(), 0.5);
}

TEST(DistributionsTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ScalarDistribution::Parse("zipf", 0.0, 1.0).ok());
  EXPECT_FALSE(ScalarDistribution::Parse("power:", 0.0, 1.0).ok());
  EXPECT_FALSE(ScalarDistribution::Parse("power:-1", 0.0, 1.0).ok());
  EXPECT_FALSE(ScalarDistribution::Parse("power:abc", 0.0, 1.0).ok());
}

TEST(DistributionsTest, ToStringMentionsFamily) {
  EXPECT_NE(ScalarDistribution::Uniform(0, 1).ToString().find("Uniform"),
            std::string::npos);
  EXPECT_NE(ScalarDistribution::Power(4, 0, 1).ToString().find("Power"),
            std::string::npos);
}

TEST(DistributionsTest, KindNamesAreStable) {
  EXPECT_STREQ(DistributionKindName(DistributionKind::kUniform), "uniform");
  EXPECT_STREQ(DistributionKindName(DistributionKind::kNormal), "normal");
  EXPECT_STREQ(DistributionKindName(DistributionKind::kPower), "power");
}

}  // namespace
}  // namespace usep
