#include "common/string_util.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, ConsecutiveDelimitersYieldEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, EmptyInputYieldsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, TrailingDelimiter) {
  EXPECT_EQ(Split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" inner space kept "), "inner space kept");
}

TEST(AsciiToLowerTest, LowercasesOnlyLetters) {
  EXPECT_EQ(AsciiToLower("DeDPO+RG 42"), "dedpo+rg 42");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("123", &value));
  EXPECT_EQ(value, 123);
  EXPECT_TRUE(ParseInt64("-45", &value));
  EXPECT_EQ(value, -45);
  EXPECT_TRUE(ParseInt64("  77  ", &value));
  EXPECT_EQ(value, 77);
  EXPECT_FALSE(ParseInt64("12x", &value));
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("1.5", &value));
  EXPECT_EQ(value, 77) << "failed parse must not clobber the output";
}

TEST(ParseInt32Test, RejectsOverflow) {
  int32_t value = 0;
  EXPECT_TRUE(ParseInt32("2147483647", &value));
  EXPECT_EQ(value, 2147483647);
  EXPECT_FALSE(ParseInt32("2147483648", &value));
  EXPECT_FALSE(ParseInt32("-2147483649", &value));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("2.5", &value));
  EXPECT_DOUBLE_EQ(value, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("2.5x", &value));
}

TEST(ParseBoolTest, AcceptedSpellings) {
  bool value = false;
  for (const char* text : {"true", "1", "yes", "on", "TRUE", " Yes "}) {
    value = false;
    EXPECT_TRUE(ParseBool(text, &value)) << text;
    EXPECT_TRUE(value) << text;
  }
  for (const char* text : {"false", "0", "no", "off", "False"}) {
    value = true;
    EXPECT_TRUE(ParseBool(text, &value)) << text;
    EXPECT_FALSE(value) << text;
  }
  EXPECT_FALSE(ParseBool("maybe", &value));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_string(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_string.c_str()).size(), 500u);
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(HumanBytesTest, ScalesSuffixes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.0 MiB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

}  // namespace
}  // namespace usep
