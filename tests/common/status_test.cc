#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream out;
  out << Status::Internal("oops");
  EXPECT_EQ(out.str(), "Internal: oops");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  const std::string moved = *std::move(result);
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrTest, AccessingErrorValueDies) {
  StatusOr<int> result = Status::Internal("broken");
  EXPECT_DEATH(result.value(), "broken");
}

Status FailsThenPropagates(bool fail) {
  USEP_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::InvalidArgument("outer");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace usep
