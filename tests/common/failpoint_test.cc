#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace usep::failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  // Every test starts and ends with a pristine registry so tests cannot
  // leak armed sites into each other (or into planner tests).
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.never_armed"));
  EXPECT_FALSE(IsArmed("failpoint_test.never_armed"));
  EXPECT_EQ(HitCount("failpoint_test.never_armed"), 0);
}

TEST_F(FailpointTest, ArmedSiteFiresUntilDisarmed) {
  Arm("failpoint_test.a");
  EXPECT_TRUE(IsArmed("failpoint_test.a"));
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.a"));
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.a"));
  EXPECT_EQ(HitCount("failpoint_test.a"), 2);

  EXPECT_TRUE(Disarm("failpoint_test.a"));
  EXPECT_FALSE(IsArmed("failpoint_test.a"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.a"));
  // The count survives disarm for post-mortem assertions...
  EXPECT_EQ(HitCount("failpoint_test.a"), 2);
  // ...and disarmed hits are not counted.
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.a"));
  EXPECT_EQ(HitCount("failpoint_test.a"), 2);
}

TEST_F(FailpointTest, DisarmOfUnknownSiteReportsFalse) {
  EXPECT_FALSE(Disarm("failpoint_test.unknown"));
}

TEST_F(FailpointTest, SkipHitsDelaysTheFirstFire) {
  Arm("failpoint_test.skip", /*skip_hits=*/3);
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.skip"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.skip"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.skip"));
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.skip"));
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.skip"));
  EXPECT_EQ(HitCount("failpoint_test.skip"), 5);
}

TEST_F(FailpointTest, RearmingResetsTheHitCount) {
  Arm("failpoint_test.rearm");
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.rearm"));
  EXPECT_EQ(HitCount("failpoint_test.rearm"), 1);
  Arm("failpoint_test.rearm", /*skip_hits=*/1);
  EXPECT_EQ(HitCount("failpoint_test.rearm"), 0);
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.rearm"));  // Skipped.
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.rearm"));
}

TEST_F(FailpointTest, SitesAreIndependent) {
  Arm("failpoint_test.x");
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.x"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.y"));
  EXPECT_EQ(HitCount("failpoint_test.y"), 0);
}

TEST_F(FailpointTest, ScopedArmDisarmsOnExit) {
  {
    ScopedArm arm("failpoint_test.scoped");
    EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.scoped"));
    EXPECT_EQ(arm.hit_count(), 1);
  }
  EXPECT_FALSE(IsArmed("failpoint_test.scoped"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.scoped"));
  EXPECT_EQ(HitCount("failpoint_test.scoped"), 1);
}

TEST_F(FailpointTest, KnownSitesListsEverySeenSite) {
  Arm("failpoint_test.k1");
  Arm("failpoint_test.k2");
  Disarm("failpoint_test.k2");
  const std::vector<std::string> sites = KnownSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "failpoint_test.k1"),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "failpoint_test.k2"),
            sites.end());
  DisarmAll();
  EXPECT_TRUE(KnownSites().empty());
}

TEST_F(FailpointTest, DisarmAllForgetsCounts) {
  Arm("failpoint_test.forget");
  EXPECT_TRUE(USEP_FAILPOINT("failpoint_test.forget"));
  DisarmAll();
  EXPECT_EQ(HitCount("failpoint_test.forget"), 0);
  EXPECT_FALSE(IsArmed("failpoint_test.forget"));
  EXPECT_FALSE(USEP_FAILPOINT("failpoint_test.forget"));
}

TEST_F(FailpointTest, ConcurrentHitsAndArmTogglesDoNotRace) {
  // Smoke test for the locking: hammer one site from several threads while
  // the main thread toggles arming.  Success is "no crash / no TSan report";
  // the exact fire pattern is timing-dependent by design.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> fires{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (USEP_FAILPOINT("failpoint_test.race")) {
          fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    Arm("failpoint_test.race");
    Disarm("failpoint_test.race");
  }
  Arm("failpoint_test.race");
  while (fires.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
  EXPECT_GT(fires.load(), 0);
  EXPECT_GT(HitCount("failpoint_test.race"), 0);
}

}  // namespace
}  // namespace usep::failpoint
