// The SIMD dispatch contract (common/simd.h) and the promise it rests on:
// the AVX2 chunk kernels in algo/scan_kernels.{h,cc} are a pure throughput
// knob.  Dispatch level must NEVER change a planning — the kernels perform
// the exact IEEE arithmetic of the scalar champion walk and only let it
// skip provably boring lanes — so this suite diffs whole plannings (and the
// cache telemetry, which pins the probe sequence, not just the outcome)
// between forced-scalar and forced-AVX2 runs across the differential
// suite's generator regimes.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algo/planner_registry.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Pins ActiveSimdLevel for a scope; always returns to auto-detection so a
// failing assertion cannot leak a forced level into later tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { ForceSimdLevel(level); }
  ~ScopedSimdLevel() { ResetSimdLevel(); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
};

TEST(SimdDispatchTest, NamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ForceAndResetRoundTrip) {
  const SimdLevel baseline = ActiveSimdLevel();
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveSimdLevel(), baseline);
}

TEST(SimdDispatchTest, EnvOverrideForcesScalar) {
  // DetectSimdLevel re-reads the environment on every call (ActiveSimdLevel
  // caches its first answer — the CI scalar leg sets the variable before
  // the process starts).  The leg also runs THIS test, so the incoming
  // value is saved, cleared to measure the true hardware level, and
  // restored on exit.
  const char* incoming = std::getenv("USEP_FORCE_SCALAR");
  const std::string saved = incoming != nullptr ? incoming : "";
  unsetenv("USEP_FORCE_SCALAR");
  const SimdLevel hardware = DetectSimdLevel();
  setenv("USEP_FORCE_SCALAR", "1", /*overwrite=*/1);
  EXPECT_EQ(DetectSimdLevel(), SimdLevel::kScalar);
  setenv("USEP_FORCE_SCALAR", "0", /*overwrite=*/1);  // "0" = not forced.
  EXPECT_EQ(DetectSimdLevel(), hardware);
  setenv("USEP_FORCE_SCALAR", "", /*overwrite=*/1);  // Empty = not forced.
  EXPECT_EQ(DetectSimdLevel(), hardware);
  unsetenv("USEP_FORCE_SCALAR");
  EXPECT_EQ(DetectSimdLevel(), hardware);
  if (incoming != nullptr) {
    setenv("USEP_FORCE_SCALAR", saved.c_str(), /*overwrite=*/1);
  }
}

TEST(SimdDispatchTest, ForcingAvx2RequiresHardwareSupport) {
  if (DetectSimdLevel() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this CPU — the guard path is the CHECK "
                    "inside ForceSimdLevel, untestable without dying";
  }
  ScopedSimdLevel forced(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kAvx2);
}

// ---- Bit-identical plannings across dispatch levels -----------------------

// Every planner family that reaches the chunk kernels: the champion scans
// (RatioGreedy, NaiveRatioGreedy, the +RG augmentations) and the batched
// probe / mu-prefilter paths (LocalSearch decorations).
std::vector<PlannerKind> KernelKinds() {
  return {PlannerKind::kRatioGreedy, PlannerKind::kNaiveRatioGreedy,
          PlannerKind::kDeDpoRg,     PlannerKind::kDeGreedyRg,
          PlannerKind::kDeDpoRgLs,   PlannerKind::kDeGreedyRgLs};
}

// The differential suite's generator corners (see differential_test.cc),
// plus a wide-row configuration whose candidate lists cross the 64-lane
// chunk boundary so multi-chunk kernel calls and tail lanes both run.
struct Regime {
  const char* name;
  int num_users;  // 0: keep the config's default.
  double capacity_mean;
  double budget_factor;
  double conflict_ratio;
  const char* utility_distribution;
};

constexpr Regime kRegimes[] = {
    {"baseline", 0, 2.0, 2.0, 0.3, "uniform"},
    {"tight-capacity", 0, 1.0, 2.0, 0.3, "uniform"},
    {"tight-budget", 0, 3.0, 0.5, 0.25, "normal"},
    {"conflict-heavy", 0, 2.0, 2.0, 0.85, "uniform"},
    {"zero-utility-dense", 0, 2.0, 2.0, 0.3, "power:4"},
    {"wide-rows", 200, 4.0, 2.0, 0.3, "uniform"},
};

Instance MakeRegimeInstance(const Regime& regime, uint64_t seed) {
  GeneratorConfig config = regime.num_users > 0
                               ? testing::MediumRandomConfig(seed)
                               : testing::SmallRandomConfig(seed);
  if (regime.num_users > 0) config.num_users = regime.num_users;
  config.capacity_mean = regime.capacity_mean;
  config.budget_factor = regime.budget_factor;
  config.conflict_ratio = regime.conflict_ratio;
  config.utility_distribution = regime.utility_distribution;
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

class SimdIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimdIdentityTest, ScalarAndAvx2PlanningsAreBitIdentical) {
  if (DetectSimdLevel() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this CPU; the scalar path is the only path";
  }
  for (const Regime& regime : kRegimes) {
    const Instance instance = MakeRegimeInstance(regime, GetParam());
    const std::string where =
        std::string(regime.name) + " seed=" + std::to_string(GetParam());
    for (const PlannerKind kind : KernelKinds()) {
      const std::unique_ptr<Planner> planner = MakePlanner(kind);
      const PlannerResult scalar = [&] {
        ScopedSimdLevel forced(SimdLevel::kScalar);
        return planner->Plan(instance);
      }();
      const PlannerResult avx2 = [&] {
        ScopedSimdLevel forced(SimdLevel::kAvx2);
        return planner->Plan(instance);
      }();
      EXPECT_EQ(avx2.planning.ToString(), scalar.planning.ToString())
          << PlannerKindName(kind) << " planning diverged on " << where;
      EXPECT_EQ(avx2.planning.total_utility(), scalar.planning.total_utility())
          << PlannerKindName(kind) << " on " << where;
      // Not just the same answer — the same work: kernels may only skip
      // probes the scalar walk also skips, so the memo telemetry matches
      // count for count.
      EXPECT_EQ(avx2.stats.iterations, scalar.stats.iterations)
          << PlannerKindName(kind) << " on " << where;
      EXPECT_EQ(avx2.stats.cache_hits, scalar.stats.cache_hits)
          << PlannerKindName(kind) << " on " << where;
      EXPECT_EQ(avx2.stats.cache_misses, scalar.stats.cache_misses)
          << PlannerKindName(kind) << " on " << where;
      EXPECT_EQ(avx2.stats.cache_invalidations, scalar.stats.cache_invalidations)
          << PlannerKindName(kind) << " on " << where;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdIdentityTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace usep
