#include "common/logging.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(LoggingTest, MinSeverityRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoDoesNotAbort) {
  USEP_LOG(Info) << "an informational message " << 42;
  SUCCEED();
}

TEST(CheckTest, PassingCheckContinues) {
  USEP_CHECK(1 + 1 == 2) << "never printed";
  USEP_CHECK_EQ(4, 4);
  USEP_CHECK_NE(4, 5);
  USEP_CHECK_LT(4, 5);
  USEP_CHECK_LE(5, 5);
  USEP_CHECK_GT(5, 4);
  USEP_CHECK_GE(5, 5);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(USEP_CHECK(false) << "boom marker", "boom marker");
}

TEST(CheckDeathTest, FailingCheckEqPrintsBothValues) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(USEP_CHECK_EQ(lhs, rhs), "3 vs 7");
}

TEST(CheckDeathTest, FailingCheckLtAborts) {
  EXPECT_DEATH(USEP_CHECK_LT(9, 2), "Check failed");
}

TEST(CheckTest, DcheckPassesWhenTrue) {
  USEP_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace usep
