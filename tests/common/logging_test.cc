#include "common/logging.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(LoggingTest, MinSeverityRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoDoesNotAbort) {
  USEP_LOG(Info) << "an informational message " << 42;
  SUCCEED();
}

TEST(CheckTest, PassingCheckContinues) {
  USEP_CHECK(1 + 1 == 2) << "never printed";
  USEP_CHECK_EQ(4, 4);
  USEP_CHECK_NE(4, 5);
  USEP_CHECK_LT(4, 5);
  USEP_CHECK_LE(5, 5);
  USEP_CHECK_GT(5, 4);
  USEP_CHECK_GE(5, 5);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(USEP_CHECK(false) << "boom marker", "boom marker");
}

TEST(CheckDeathTest, FailingCheckEqPrintsBothValues) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(USEP_CHECK_EQ(lhs, rhs), "3 vs 7");
}

TEST(CheckDeathTest, FailingCheckLtAborts) {
  EXPECT_DEATH(USEP_CHECK_LT(9, 2), "Check failed");
}

TEST(CheckTest, DcheckPassesWhenTrue) {
  USEP_DCHECK(true);
  SUCCEED();
}

// Regression test for torn log lines: LogMessage must emit each line as a
// single write under a mutex, so lines from concurrent loggers never
// interleave mid-line.  Captures stderr via dup2 while several threads log
// distinctive lines, then checks every captured line is whole.
TEST(LoggingTest, ConcurrentLogLinesAreNotTorn) {
  FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  std::fflush(stderr);
  const int saved_stderr = dup(fileno(stderr));
  ASSERT_GE(saved_stderr, 0);
  ASSERT_GE(dup2(fileno(capture), fileno(stderr)), 0);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        USEP_LOG(Info) << "torn-check thread=" << t << " line=" << i
                       << " tail";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::fflush(stderr);
  dup2(saved_stderr, fileno(stderr));
  close(saved_stderr);

  std::rewind(capture);
  std::string content;
  char buffer[4096];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(capture);

  int whole_lines = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t newline = content.find('\n', start);
    if (newline == std::string::npos) newline = content.size();
    const std::string line = content.substr(start, newline - start);
    start = newline + 1;
    if (line.find("torn-check") == std::string::npos) continue;
    // A whole line carries exactly one marker and ends with its tail; a
    // torn line would splice two messages or cut one short.
    EXPECT_EQ(line.find("torn-check"), line.rfind("torn-check"))
        << "spliced line: " << line;
    ASSERT_GE(line.size(), 5u) << "truncated line: " << line;
    EXPECT_EQ(line.substr(line.size() - 5), " tail")
        << "truncated line: " << line;
    ++whole_lines;
  }
  EXPECT_EQ(whole_lines, kThreads * kLinesPerThread);
}

}  // namespace
}  // namespace usep
