// This test links the usep_memhook library, so the counting operator
// new/delete overrides are live for the whole binary (including gtest's own
// allocations — hence the "delta" style assertions).

#include "common/memhook.h"

#include <cstddef>
#include <thread>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(MemhookTest, HookIsActiveInThisBinary) {
  EXPECT_TRUE(memhook::IsActive());
}

TEST(MemhookTest, AllocationMovesCurrentBytes) {
  const size_t before = memhook::CurrentBytes();
  auto block = std::make_unique<std::vector<char>>(1 << 20);
  EXPECT_GE(memhook::CurrentBytes(), before + (1 << 20));
  block.reset();
  EXPECT_LT(memhook::CurrentBytes(), before + (1 << 20));
}

TEST(MemhookTest, PeakTracksHighWaterMark) {
  memhook::ResetPeak();
  const size_t baseline = memhook::PeakBytes();
  {
    std::vector<char> big(4 << 20);
    EXPECT_GE(memhook::PeakBytes(), baseline + (4 << 20));
  }
  // Peak persists after the free...
  EXPECT_GE(memhook::PeakBytes(), baseline + (4 << 20));
  // ...until reset.
  memhook::ResetPeak();
  EXPECT_LT(memhook::PeakBytes(), baseline + (4 << 20));
}

TEST(MemhookTest, TotalAllocationsMonotone) {
  // Direct operator-new calls: unlike `new int`, these cannot be elided by
  // the optimizer, so the counter must move by exactly our allocations.
  const size_t before = memhook::TotalAllocations();
  for (int i = 0; i < 10; ++i) {
    void* p = ::operator new(16);
    ::operator delete(p);
  }
  EXPECT_GE(memhook::TotalAllocations(), before + 10);
}

TEST(MemhookTest, ArrayNewAccounted) {
  const size_t before = memhook::CurrentBytes();
  void* arr = ::operator new[](1 << 16);
  EXPECT_GE(memhook::CurrentBytes(), before + (1 << 16));
  ::operator delete[](arr);
  EXPECT_LT(memhook::CurrentBytes(), before + (1 << 16));
}

struct alignas(64) OverAligned {
  char data[192];
};

TEST(MemhookTest, OverAlignedAllocationRoundTrips) {
  const size_t before = memhook::CurrentBytes();
  OverAligned* p = new OverAligned;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  EXPECT_GE(memhook::CurrentBytes(), before + sizeof(OverAligned));
  delete p;
  EXPECT_LE(memhook::CurrentBytes(), before + sizeof(OverAligned));
}

TEST(MemhookTest, OverAlignedArrayRoundTrips) {
  const size_t before = memhook::CurrentBytes();
  OverAligned* arr = new OverAligned[8];
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arr) % 64, 0u);
  delete[] arr;
  EXPECT_LE(memhook::CurrentBytes(), before + sizeof(OverAligned));
}

TEST(MemhookTest, CountersAreThreadSafe) {
  constexpr int kThreads = 4;
  constexpr int kAllocationsPerThread = 5000;
  constexpr size_t kBlock = 256;
  const size_t allocations_before = memhook::TotalAllocations();
  const size_t bytes_before = memhook::CurrentBytes();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAllocationsPerThread; ++i) {
        void* p = ::operator new(kBlock);
        ::operator delete(p);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GE(memhook::TotalAllocations(),
            allocations_before + kThreads * kAllocationsPerThread);
  // Everything we allocated was freed; the thread objects themselves are
  // gone too, so current usage is back near the baseline.
  EXPECT_LE(memhook::CurrentBytes(), bytes_before + 64 * 1024);
}

TEST(MemhookTest, NothrowNewAccounted) {
  const size_t before = memhook::CurrentBytes();
  char* p = new (std::nothrow) char[1024];
  ASSERT_NE(p, nullptr);
  EXPECT_GE(memhook::CurrentBytes(), before + 1024);
  delete[] p;
}

}  // namespace
}  // namespace usep
