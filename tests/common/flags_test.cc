#include "common/flags.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, DefaultsSurviveEmptyCommandLine) {
  FlagSet flags("prog");
  int64_t* count = flags.AddInt64("count", 7, "a count");
  double* rate = flags.AddDouble("rate", 0.5, "a rate");
  bool* verbose = flags.AddBool("verbose", false, "verbosity");
  std::string* name = flags.AddString("name", "default", "a name");

  Argv argv({"prog"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(*count, 7);
  EXPECT_DOUBLE_EQ(*rate, 0.5);
  EXPECT_FALSE(*verbose);
  EXPECT_EQ(*name, "default");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags("prog");
  int64_t* count = flags.AddInt64("count", 0, "");
  std::string* name = flags.AddString("name", "", "");
  Argv argv({"prog", "--count=42", "--name=alice"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(*count, 42);
  EXPECT_EQ(*name, "alice");
}

TEST(FlagsTest, SpaceSeparatedValue) {
  FlagSet flags("prog");
  double* rate = flags.AddDouble("rate", 0.0, "");
  Argv argv({"prog", "--rate", "2.25"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_DOUBLE_EQ(*rate, 2.25);
}

TEST(FlagsTest, BareBoolFlagSetsTrue) {
  FlagSet flags("prog");
  bool* verbose = flags.AddBool("verbose", false, "");
  Argv argv({"prog", "--verbose"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_TRUE(*verbose);
}

TEST(FlagsTest, ExplicitBoolValue) {
  FlagSet flags("prog");
  bool* verbose = flags.AddBool("verbose", true, "");
  Argv argv({"prog", "--verbose=false"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_FALSE(*verbose);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags("prog");
  flags.AddBool("x", false, "");
  Argv argv({"prog", "input.txt", "--x", "output.txt"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(flags.positional_args(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags("prog");
  Argv argv({"prog", "--mystery=1"});
  const Status status = flags.Parse(argv.argc(), argv.argv());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("mystery"), std::string::npos);
}

TEST(FlagsTest, BadValueFails) {
  FlagSet flags("prog");
  flags.AddInt64("count", 0, "");
  Argv argv({"prog", "--count=abc"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags("prog");
  flags.AddInt64("count", 0, "");
  Argv argv({"prog", "--count"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
}

TEST(FlagsTest, HelpReturnsFailedPrecondition) {
  FlagSet flags("prog");
  flags.AddInt64("count", 3, "the count");
  Argv argv({"prog", "--help"});
  EXPECT_EQ(flags.Parse(argv.argc(), argv.argv()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FlagsTest, UsageStringListsFlagsAndDefaults) {
  FlagSet flags("prog");
  flags.AddInt64("count", 3, "the count");
  flags.AddString("name", "bob", "the name");
  const std::string usage = flags.UsageString();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("the count"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
  EXPECT_NE(usage.find("default: bob"), std::string::npos);
}

TEST(FlagsDeathTest, DuplicateRegistrationAborts) {
  FlagSet flags("prog");
  flags.AddInt64("count", 0, "");
  EXPECT_DEATH(flags.AddBool("count", false, ""), "duplicate");
}

}  // namespace
}  // namespace usep
