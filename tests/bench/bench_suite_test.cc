#include "harness/bench_suite.h"

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "gen/synthetic_generator.h"

namespace usep::bench {
namespace {

TEST(RobustStatsTest, EmptyInputIsAllZero) {
  const RobustStats stats = ComputeRobustStats({});
  EXPECT_DOUBLE_EQ(stats.median, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.mad, 0.0);
}

TEST(RobustStatsTest, OddCountPicksMiddle) {
  const RobustStats stats = ComputeRobustStats({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(stats.median, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  // Deviations from 5: {4, 4, 0} -> median 4.
  EXPECT_DOUBLE_EQ(stats.mad, 4.0);
}

TEST(RobustStatsTest, EvenCountAveragesMiddlePair) {
  const RobustStats stats = ComputeRobustStats({4.0, 2.0, 8.0, 6.0});
  EXPECT_DOUBLE_EQ(stats.median, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  // Deviations from 5: {1, 3, 1, 3} -> median 2.
  EXPECT_DOUBLE_EQ(stats.mad, 2.0);
}

TEST(RobustStatsTest, MadIgnoresSingleOutlier) {
  // One descheduled trial at 100 must not move the spread estimate much —
  // exactly why the CI gate uses MAD instead of stddev.
  const RobustStats stats = ComputeRobustStats({10.0, 10.5, 9.5, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(stats.median, 10.0);
  EXPECT_DOUBLE_EQ(stats.mad, 0.5);
}

TEST(ScenarioCatalogTest, NamesAreUniqueAndWellFormed) {
  const std::vector<BenchScenario> catalog = BuildScenarioCatalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> names;
  for (const BenchScenario& scenario : catalog) {
    EXPECT_TRUE(names.insert(scenario.name).second)
        << "duplicate scenario name: " << scenario.name;
    // name is "<family>/<shape>/<planner>/t<threads>".
    EXPECT_EQ(scenario.name.rfind(scenario.family + "/", 0), 0u)
        << scenario.name;
    EXPECT_NE(scenario.name.find("/t"), std::string::npos) << scenario.name;
    EXPECT_GE(scenario.threads, 1);
  }
}

TEST(ScenarioCatalogTest, QuickPresetIsANonEmptyStrictSubset) {
  const std::vector<BenchScenario> catalog = BuildScenarioCatalog();
  size_t quick = 0;
  for (const BenchScenario& scenario : catalog) quick += scenario.quick;
  EXPECT_GT(quick, 0u);
  EXPECT_LT(quick, catalog.size());
}

TEST(ScenarioCatalogTest, CoversAllFamiliesAndThreadCounts) {
  const std::vector<BenchScenario> catalog = BuildScenarioCatalog();
  std::set<std::string> families;
  std::set<int> threads;
  for (const BenchScenario& scenario : catalog) {
    families.insert(scenario.family);
    threads.insert(scenario.threads);
  }
  for (const char* family : {"micro", "fig2", "fig3", "fig4"}) {
    EXPECT_TRUE(families.count(family)) << family;
  }
  for (const int t : {1, 2, 8}) EXPECT_TRUE(threads.count(t)) << t;
}

BenchScenario TinyScenario() {
  BenchScenario scenario;
  scenario.name = "test/tiny/DeDPO+RG/t1";
  scenario.family = "test";
  scenario.config.num_events = 5;
  scenario.config.num_users = 40;
  scenario.config.seed = 7;
  scenario.kind = PlannerKind::kDeDpoRg;
  return scenario;
}

TEST(RunScenarioTest, ProducesValidatedDeterministicResult) {
  const BenchScenario scenario = TinyScenario();
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(scenario.config);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  BenchRunOptions options;
  options.warmup = 1;
  options.trials = 3;
  const ScenarioResult result = RunScenario(scenario, *instance, options);

  EXPECT_EQ(result.name, scenario.name);
  EXPECT_EQ(result.planner, std::string("DeDPO+RG"));
  EXPECT_EQ(result.trials, 3);
  EXPECT_EQ(result.num_events, 5);
  EXPECT_EQ(result.num_users, 40);
  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.deterministic);
  EXPECT_GT(result.objective, 0.0);
  EXPECT_GT(result.assignments, 0);
  EXPECT_GE(result.wall_ms.min, 0.0);
  EXPECT_GE(result.wall_ms.median, result.wall_ms.min);
  EXPECT_GE(result.wall_ms.mad, 0.0);
  EXPECT_GE(result.cpu_ms.median, 0.0);
  EXPECT_FALSE(result.termination.empty());
  EXPECT_FALSE(result.has_profile);
}

TEST(RunScenarioTest, ProfileOptionAttachesPhaseBreakdown) {
  const BenchScenario scenario = TinyScenario();
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(scenario.config);
  ASSERT_TRUE(instance.ok());

  BenchRunOptions options;
  options.warmup = 0;
  options.trials = 1;
  options.profile = true;
  const ScenarioResult result = RunScenario(scenario, *instance, options);
  EXPECT_TRUE(result.has_profile);
  EXPECT_GT(result.profile.num_spans, 0);
  EXPECT_FALSE(result.profile.phases.empty());
}

TEST(RunScenarioTest, ThreadedRunMatchesSequentialObjective) {
  BenchScenario scenario = TinyScenario();
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(scenario.config);
  ASSERT_TRUE(instance.ok());

  BenchRunOptions options;
  options.warmup = 0;
  options.trials = 2;
  const ScenarioResult sequential = RunScenario(scenario, *instance, options);
  scenario.threads = 4;
  const ScenarioResult threaded = RunScenario(scenario, *instance, options);
  EXPECT_EQ(threaded.objective, sequential.objective);
  EXPECT_EQ(threaded.assignments, sequential.assignments);
  EXPECT_TRUE(threaded.deterministic);
}

TEST(WriteBenchJsonTest, EmitsSchemaEnvironmentAndScenarioRows) {
  const BenchScenario scenario = TinyScenario();
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(scenario.config);
  ASSERT_TRUE(instance.ok());
  BenchRunOptions options;
  options.warmup = 0;
  options.trials = 1;
  const ScenarioResult result = RunScenario(scenario, *instance, options);

  BenchEnvironment environment;
  environment.tag = "unit";
  environment.git_sha = "deadbeef";
  environment.compiler = CompilerVersionString();
  environment.build_type = BuildTypeString();
  environment.timestamp = "2026-01-01T00:00:00Z";
  environment.scale = "small";
  environment.host_threads = 8;

  std::ostringstream out;
  WriteBenchJson(out, environment, {result});
  const std::string text = out.str();
  for (const char* needle :
       {"\"schema_version\":1", "\"kind\":\"bench\"", "\"environment\":",
        "\"tag\":\"unit\"", "\"git_sha\":\"deadbeef\"", "\"scenarios\":",
        "\"name\":\"test/tiny/DeDPO+RG/t1\"", "\"wall_ms\":{\"median\":",
        "\"cpu_ms\":{\"median\":", "\"mad\":", "\"peak_bytes\":",
        "\"objective\":", "\"validated\":true", "\"deterministic\":true"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace usep::bench
