#include "harness/bench_util.h"

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "common/csv.h"
#include "testing/test_instances.h"

namespace usep::bench {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(BenchScaleTest, DefaultsToSmall) {
  ScopedEnv env("USEP_BENCH_SCALE", "");
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmall);
}

TEST(BenchScaleTest, PaperViaEnvironment) {
  ScopedEnv env("USEP_BENCH_SCALE", "paper");
  EXPECT_EQ(GetBenchScale(), BenchScale::kPaper);
  EXPECT_STREQ(BenchScaleName(GetBenchScale()), "paper");
}

TEST(BenchScaleTest, PickSelectsByScale) {
  {
    ScopedEnv env("USEP_BENCH_SCALE", "small");
    EXPECT_EQ(Pick(5, 100), 5);
    EXPECT_DOUBLE_EQ(PickDouble(0.5, 2.0), 0.5);
  }
  {
    ScopedEnv env("USEP_BENCH_SCALE", "paper");
    EXPECT_EQ(Pick(5, 100), 100);
    EXPECT_DOUBLE_EQ(PickDouble(0.5, 2.0), 2.0);
  }
}

TEST(ScaledDefaultConfigTest, SmallIsReducedPaperShape) {
  ScopedEnv env("USEP_BENCH_SCALE", "small");
  const GeneratorConfig config = ScaledDefaultConfig();
  EXPECT_EQ(config.num_events, 50);
  EXPECT_EQ(config.num_users, 500);
  EXPECT_DOUBLE_EQ(config.capacity_mean, 10.0);
  EXPECT_DOUBLE_EQ(config.budget_factor, 2.0);
  EXPECT_DOUBLE_EQ(config.conflict_ratio, 0.25);
}

TEST(ScaledDefaultConfigTest, PaperMatchesTable7Bold) {
  ScopedEnv env("USEP_BENCH_SCALE", "paper");
  const GeneratorConfig config = ScaledDefaultConfig();
  EXPECT_EQ(config.num_events, 100);
  EXPECT_EQ(config.num_users, 5000);
  EXPECT_DOUBLE_EQ(config.capacity_mean, 50.0);
}

TEST(MeasurePlannerTest, ReportsValidatedRun) {
  const Instance instance = testing::MakeTable1Instance();
  const MeasuredRun run = MeasurePlanner(DeDpoPlanner(), instance);
  EXPECT_EQ(run.algorithm, "DeDPO");
  EXPECT_TRUE(run.validated);
  EXPECT_GT(run.utility, 0.0);
  EXPECT_GT(run.assignments, 0);
  EXPECT_GE(run.time_ms, 0.0);
}

TEST(FigureBenchTest, FinishWritesParsableCsv) {
  ScopedEnv env("USEP_BENCH_SCALE", "small");
  const Instance instance = testing::MakeTable1Instance();
  FigureBench bench("bench_util_test_figure", "param", "test shape");
  bench.RunPoint("a", instance, {PlannerKind::kDeGreedy});
  MeasuredRun manual;
  manual.algorithm = "Manual";
  manual.utility = 1.5;
  manual.validated = true;
  bench.AddRun("b", manual);
  EXPECT_EQ(bench.Finish(), 0);

  std::ifstream file("bench_results/bench_util_test_figure.csv");
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  const auto rows = ParseCsv(content.str());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // Header + 2 runs.
  EXPECT_EQ((*rows)[0][0], "figure");
  EXPECT_EQ((*rows)[1][3], "DeGreedy");
  EXPECT_EQ((*rows)[2][3], "Manual");
  std::remove("bench_results/bench_util_test_figure.csv");
}

TEST(FigureBenchTest, InvalidRunFailsTheBinary) {
  const Instance instance = testing::MakeTable1Instance();
  FigureBench bench("bench_util_test_invalid", "param", "test shape");
  MeasuredRun bad;
  bad.algorithm = "Broken";
  bad.validated = false;
  bench.AddRun("x", bad);
  EXPECT_EQ(bench.Finish(), 1);
  std::remove("bench_results/bench_util_test_invalid.csv");
}

}  // namespace
}  // namespace usep::bench
