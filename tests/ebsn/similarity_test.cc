#include "ebsn/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(IntersectionSizeTest, Basic) {
  EXPECT_EQ(IntersectionSize({1, 3, 5}, {3, 5, 7}), 2);
  EXPECT_EQ(IntersectionSize({1, 2}, {3, 4}), 0);
  EXPECT_EQ(IntersectionSize({}, {1}), 0);
  EXPECT_EQ(IntersectionSize({1, 2, 3}, {1, 2, 3}), 3);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TagSimilarity(SimilarityKind::kJaccard, {1, 2}, {2, 3}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TagSimilarity(SimilarityKind::kJaccard, {1, 2}, {1, 2}),
                   1.0);
  EXPECT_DOUBLE_EQ(TagSimilarity(SimilarityKind::kJaccard, {1}, {2}), 0.0);
}

TEST(CosineTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TagSimilarity(SimilarityKind::kCosine, {1, 2}, {2, 3}),
                   1.0 / 2.0);
  EXPECT_DOUBLE_EQ(TagSimilarity(SimilarityKind::kCosine, {1, 2, 3}, {1}),
                   1.0 / std::sqrt(3.0));
}

TEST(SimilarityTest, EmptySetsHaveZeroSimilarity) {
  EXPECT_EQ(TagSimilarity(SimilarityKind::kJaccard, {}, {}), 0.0);
  EXPECT_EQ(TagSimilarity(SimilarityKind::kJaccard, {1}, {}), 0.0);
  EXPECT_EQ(TagSimilarity(SimilarityKind::kCosine, {}, {1}), 0.0);
}

TEST(SimilarityTest, SymmetricAndBounded) {
  const std::vector<std::vector<int>> sets = {
      {}, {0}, {0, 1}, {1, 2, 3}, {0, 2, 4, 6}, {5}};
  for (const SimilarityKind kind :
       {SimilarityKind::kJaccard, SimilarityKind::kCosine}) {
    for (const auto& a : sets) {
      for (const auto& b : sets) {
        const double ab = TagSimilarity(kind, a, b);
        EXPECT_DOUBLE_EQ(ab, TagSimilarity(kind, b, a));
        EXPECT_GE(ab, 0.0);
        EXPECT_LE(ab, 1.0);
      }
    }
  }
}

TEST(SimilarityTest, IdenticalNonEmptySetsScoreOne) {
  for (const SimilarityKind kind :
       {SimilarityKind::kJaccard, SimilarityKind::kCosine}) {
    EXPECT_DOUBLE_EQ(TagSimilarity(kind, {2, 4, 8}, {2, 4, 8}), 1.0);
  }
}

TEST(SimilarityKindTest, ParseRoundTrip) {
  for (const SimilarityKind kind :
       {SimilarityKind::kJaccard, SimilarityKind::kCosine}) {
    const StatusOr<SimilarityKind> parsed =
        ParseSimilarityKind(SimilarityKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseSimilarityKind("dice").ok());
}

}  // namespace
}  // namespace usep
