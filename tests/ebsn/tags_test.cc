#include "ebsn/tags.h"

#include <set>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(TagVocabularyTest, DefaultHas64DistinctTags) {
  const TagVocabulary& vocabulary = TagVocabulary::Default();
  EXPECT_EQ(vocabulary.size(), 64);
  std::set<std::string> unique;
  for (int i = 0; i < vocabulary.size(); ++i) {
    unique.insert(vocabulary.tag(i));
    EXPECT_FALSE(vocabulary.tag(i).empty());
  }
  EXPECT_EQ(static_cast<int>(unique.size()), vocabulary.size());
}

TEST(TagVocabularyTest, PopularityIsNormalizedAndZipfDecreasing) {
  const TagVocabulary& vocabulary = TagVocabulary::Default();
  double total = 0.0;
  for (int i = 0; i < vocabulary.size(); ++i) {
    total += vocabulary.popularity(i);
    if (i > 0) {
      EXPECT_LT(vocabulary.popularity(i), vocabulary.popularity(i - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf exponent 1: popularity(0) / popularity(1) == 2.
  EXPECT_NEAR(vocabulary.popularity(0) / vocabulary.popularity(1), 2.0, 1e-9);
}

TEST(TagVocabularyTest, SampleTagSetIsSortedAndDistinct) {
  const TagVocabulary& vocabulary = TagVocabulary::Default();
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<int> tags = vocabulary.SampleTagSet(8, rng);
    ASSERT_EQ(tags.size(), 8u);
    for (size_t i = 1; i < tags.size(); ++i) {
      EXPECT_LT(tags[i - 1], tags[i]);
    }
    for (const int tag : tags) {
      EXPECT_GE(tag, 0);
      EXPECT_LT(tag, vocabulary.size());
    }
  }
}

TEST(TagVocabularyTest, SampleClampsToVocabularySize) {
  TagVocabulary small({"a", "b", "c"}, 1.0);
  Rng rng(2);
  const std::vector<int> all = small.SampleTagSet(10, rng);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2}));
}

TEST(TagVocabularyTest, PopularTagsAppearMoreOften) {
  const TagVocabulary& vocabulary = TagVocabulary::Default();
  Rng rng(3);
  int first_tag_hits = 0;
  int last_tag_hits = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const std::vector<int> tags = vocabulary.SampleTagSet(5, rng);
    for (const int tag : tags) {
      if (tag == 0) ++first_tag_hits;
      if (tag == vocabulary.size() - 1) ++last_tag_hits;
    }
  }
  EXPECT_GT(first_tag_hits, 5 * last_tag_hits);
}

TEST(TagVocabularyTest, CustomZipfExponent) {
  TagVocabulary steep({"a", "b", "c", "d"}, 2.0);
  EXPECT_NEAR(steep.popularity(0) / steep.popularity(1), 4.0, 1e-9);
}

TEST(TagVocabularyDeathTest, EmptyVocabularyAborts) {
  EXPECT_DEATH(TagVocabulary({}, 1.0), "Check failed");
}

}  // namespace
}  // namespace usep
