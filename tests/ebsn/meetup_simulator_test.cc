#include "ebsn/meetup_simulator.h"

#include <gtest/gtest.h>

#include "core/validation.h"

namespace usep {
namespace {

TEST(CityConfigTest, PresetsMatchTable6) {
  const CityConfig vancouver = VancouverConfig();
  EXPECT_EQ(vancouver.name, "Vancouver");
  EXPECT_EQ(vancouver.num_events, 225);
  EXPECT_EQ(vancouver.num_users, 2012);
  EXPECT_DOUBLE_EQ(vancouver.capacity_mean, 50.0);
  EXPECT_DOUBLE_EQ(vancouver.conflict_ratio, 0.25);

  const CityConfig auckland = AucklandConfig();
  EXPECT_EQ(auckland.num_events, 37);
  EXPECT_EQ(auckland.num_users, 569);

  const CityConfig singapore = SingaporeConfig();
  EXPECT_EQ(singapore.num_events, 87);
  EXPECT_EQ(singapore.num_users, 1500);

  EXPECT_EQ(PaperCities().size(), 3u);
}

TEST(MeetupSimulatorTest, AucklandInstanceHasExpectedShape) {
  const CityConfig config = AucklandConfig();
  const StatusOr<Instance> instance = SimulateCity(config, MeetupSimOptions());
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_events(), 37);
  EXPECT_EQ(instance->num_users(), 569);
  EXPECT_NEAR(instance->MeasuredConflictRatio(), 0.25, 0.12);
}

TEST(MeetupSimulatorTest, DeterministicInSeed) {
  const CityConfig config = AucklandConfig();
  const StatusOr<Instance> a = SimulateCity(config, MeetupSimOptions());
  const StatusOr<Instance> b = SimulateCity(config, MeetupSimOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (UserId u = 0; u < a->num_users(); ++u) {
    ASSERT_EQ(a->user(u).budget, b->user(u).budget);
  }
  for (EventId v = 0; v < a->num_events(); ++v) {
    ASSERT_DOUBLE_EQ(a->utility(v, 0), b->utility(v, 0));
  }
}

TEST(MeetupSimulatorTest, DifferentCitiesDiffer) {
  MeetupSimOptions options;
  const StatusOr<Instance> auckland =
      SimulateCity(AucklandConfig(), options);
  CityConfig renamed = AucklandConfig();
  renamed.name = "Auckland-2";
  const StatusOr<Instance> other = SimulateCity(renamed, options);
  ASSERT_TRUE(auckland.ok());
  ASSERT_TRUE(other.ok());
  bool differs = false;
  for (UserId u = 0; u < auckland->num_users() && !differs; ++u) {
    differs |= auckland->user(u).budget != other->user(u).budget;
  }
  EXPECT_TRUE(differs) << "city name must salt the seed";
}

TEST(MeetupSimulatorTest, UtilitiesAreSparseTagSimilarities) {
  const StatusOr<Instance> instance =
      SimulateCity(AucklandConfig(), MeetupSimOptions());
  ASSERT_TRUE(instance.ok());
  int zero = 0;
  int total = 0;
  for (EventId v = 0; v < instance->num_events(); ++v) {
    for (UserId u = 0; u < instance->num_users(); ++u) {
      const double mu = instance->utility(v, u);
      ASSERT_GE(mu, 0.0);
      ASSERT_LE(mu, 1.0);
      if (mu == 0.0) ++zero;
      ++total;
    }
  }
  // Tag-based utilities are sparse: disjoint tag profiles are common.
  EXPECT_GT(zero, total / 20);
  EXPECT_LT(zero, total) << "but not everything is zero";
}

TEST(MeetupSimulatorTest, LocationsInsideGrid) {
  const CityConfig config = AucklandConfig();
  const StatusOr<Instance> instance = SimulateCity(config, MeetupSimOptions());
  ASSERT_TRUE(instance.ok());
  const auto* model =
      dynamic_cast<const MetricCostModel*>(&instance->cost_model());
  ASSERT_NE(model, nullptr);
  for (EventId v = 0; v < instance->num_events(); ++v) {
    const Point& p = model->event_location(v);
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, config.extent);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, config.extent);
  }
}

TEST(MeetupSimulatorTest, TravelAwarePolicySupported) {
  MeetupSimOptions options;
  options.conflict_policy = ConflictPolicy::kTravelTimeAware;
  const StatusOr<Instance> instance =
      SimulateCity(AucklandConfig(), options);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->conflict_policy(), ConflictPolicy::kTravelTimeAware);
  // Travel gating can only add conflicts.
  MeetupSimOptions overlap_only;
  const StatusOr<Instance> baseline =
      SimulateCity(AucklandConfig(), overlap_only);
  ASSERT_TRUE(baseline.ok());
  EXPECT_GE(instance->MeasuredConflictRatio(),
            baseline->MeasuredConflictRatio());
}

TEST(MeetupSimulatorTest, EventsOfTheSameGroupShareUtilityColumns) {
  // Events inherit their group's tags, so mu(v, .) is identical for any two
  // events of the same group — the block correlation structure of real
  // EBSN utility matrices.
  const StatusOr<Instance> instance =
      SimulateCity(AucklandConfig(), MeetupSimOptions());
  ASSERT_TRUE(instance.ok());
  bool found_same_group_pair = false;
  for (EventId a = 0; a < instance->num_events(); ++a) {
    for (EventId b = a + 1; b < instance->num_events(); ++b) {
      const std::string& name_a = instance->event(a).name;
      const std::string& name_b = instance->event(b).name;
      if (name_a.substr(0, 3) != name_b.substr(0, 3)) continue;  // "gNN".
      found_same_group_pair = true;
      for (UserId u = 0; u < instance->num_users(); ++u) {
        ASSERT_DOUBLE_EQ(instance->utility(a, u), instance->utility(b, u))
            << name_a << " vs " << name_b;
      }
    }
  }
  EXPECT_TRUE(found_same_group_pair)
      << "with 37 events over 10 groups some group repeats";
}

TEST(MeetupSimulatorTest, EventNamesEncodeGroups) {
  const StatusOr<Instance> instance =
      SimulateCity(AucklandConfig(), MeetupSimOptions());
  ASSERT_TRUE(instance.ok());
  for (EventId v = 0; v < instance->num_events(); ++v) {
    EXPECT_EQ(instance->event(v).name[0], 'g');
    EXPECT_NE(instance->event(v).name.find("-e"), std::string::npos);
  }
}

TEST(MeetupSimulatorTest, RejectsBadConfig) {
  CityConfig config = AucklandConfig();
  config.num_hotspots = 0;
  EXPECT_FALSE(SimulateCity(config, MeetupSimOptions()).ok());
}

}  // namespace
}  // namespace usep
