#include "ebsn/groups.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(GroupsTest, GeneratesRequestedCount) {
  Rng rng(1);
  const std::vector<Group> groups =
      GenerateGroups(TagVocabulary::Default(), 10, 5, 4, rng);
  ASSERT_EQ(groups.size(), 10u);
  for (const Group& group : groups) {
    EXPECT_EQ(group.tags.size(), 5u);
    EXPECT_GE(group.hotspot, 0);
    EXPECT_LT(group.hotspot, 4);
    for (size_t i = 1; i < group.tags.size(); ++i) {
      EXPECT_LT(group.tags[i - 1], group.tags[i]) << "sorted, distinct";
    }
  }
}

TEST(GroupsTest, ZeroGroupsAllowed) {
  Rng rng(2);
  EXPECT_TRUE(GenerateGroups(TagVocabulary::Default(), 0, 5, 4, rng).empty());
}

TEST(GroupsTest, HotspotsAreZipfSkewed) {
  Rng rng(3);
  const std::vector<Group> groups =
      GenerateGroups(TagVocabulary::Default(), 3000, 3, 8, rng);
  std::vector<int> counts(8, 0);
  for (const Group& group : groups) ++counts[group.hotspot];
  EXPECT_GT(counts[0], counts[7] * 3)
      << "hotspot 0 should attract far more groups than hotspot 7";
}

TEST(GroupsTest, EventAssignmentCoversGroupsWithSkew) {
  Rng rng(4);
  const std::vector<int> assignment = AssignEventsToGroups(5000, 10, rng);
  ASSERT_EQ(assignment.size(), 5000u);
  std::vector<int> counts(10, 0);
  for (const int group : assignment) {
    ASSERT_GE(group, 0);
    ASSERT_LT(group, 10);
    ++counts[group];
  }
  EXPECT_GT(counts[0], counts[9] * 3)
      << "group 0 organizes far more events (Zipf popularity)";
  for (const int count : counts) {
    EXPECT_GT(count, 0) << "every group organizes something at this scale";
  }
}

TEST(GroupsTest, DeterministicInRng) {
  Rng rng_a(77);
  Rng rng_b(77);
  const std::vector<Group> a =
      GenerateGroups(TagVocabulary::Default(), 20, 4, 5, rng_a);
  const std::vector<Group> b =
      GenerateGroups(TagVocabulary::Default(), 20, 4, 5, rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tags, b[i].tags);
    EXPECT_EQ(a[i].hotspot, b[i].hotspot);
  }
}

TEST(GroupsDeathTest, AssignmentNeedsAtLeastOneGroup) {
  Rng rng(5);
  EXPECT_DEATH(AssignEventsToGroups(10, 0, rng), "Check failed");
}

}  // namespace
}  // namespace usep
