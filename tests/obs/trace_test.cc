#include "obs/trace.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"

namespace usep::obs {
namespace {

TEST(TraceTest, NullRecorderSpanIsInert) {
  TraceSpan span(nullptr, "noop", "test");
  EXPECT_FALSE(span.enabled());
  span.AddArg("k", static_cast<int64_t>(1));
  span.End();  // Harmless.
}

TEST(TraceTest, SpanRecordsCompleteEvent) {
  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "phase-one", "test");
    span.AddArg("count", static_cast<int64_t>(7));
    span.AddArg("label", std::string_view("hello"));
    span.AddArg("ratio", 0.5);
  }
  ASSERT_EQ(recorder.size(), 1u);
  const std::vector<TraceEvent> events = recorder.Events();
  const TraceEvent& event = events[0];
  EXPECT_EQ(event.name, "phase-one");
  EXPECT_EQ(event.categories, "test");
  EXPECT_EQ(event.phase, 'X');
  EXPECT_GE(event.dur_us, 0.0);
  ASSERT_EQ(event.args.size(), 3u);
  EXPECT_EQ(event.args[0].first, "count");
  EXPECT_EQ(event.args[0].second, "7");
  EXPECT_EQ(event.args[1].second, "\"hello\"");
  EXPECT_EQ(event.args[2].first, "ratio");
}

TEST(TraceTest, EndIsIdempotentAndStopsArgs) {
  TraceRecorder recorder;
  TraceSpan span(&recorder, "ended", "test");
  span.AddArg("before", static_cast<int64_t>(1));
  span.End();
  span.AddArg("after", static_cast<int64_t>(2));  // Dropped.
  span.End();                                     // No second event.
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.Events()[0].args.size(), 1u);
}

TEST(TraceTest, NestedSpansHaveContainingTimestamps) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer", "test");
    {
      TraceSpan inner(&recorder, "inner", "test");
    }
  }
  // Destruction order records inner first.
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Chrome infers nesting from containment: outer starts no later and ends
  // no earlier than inner.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(TraceTest, ThreadIdsAreStableAndDistinct) {
  TraceRecorder recorder;
  const int main_tid = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), main_tid);  // Stable per thread.
  int other_tid = -1;
  std::thread worker([&recorder, &other_tid] {
    other_tid = CurrentThreadId();
    TraceSpan span(&recorder, "on-worker", "test");
  });
  worker.join();
  EXPECT_NE(other_tid, main_tid);
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.Events()[0].tid, other_tid);
}

TEST(TraceTest, NameCurrentThreadEmitsMetadata) {
  TraceRecorder recorder;
  recorder.NameCurrentThread("main-thread");
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'M');
  EXPECT_EQ(events[0].name, "thread_name");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "name");
  EXPECT_EQ(events[0].args[0].second, "\"main-thread\"");
}

TEST(TraceTest, WriteJsonEnvelopeShape) {
  TraceRecorder recorder;
  recorder.NameCurrentThread("t0");
  {
    TraceSpan span(&recorder, "work", "cat");
    span.AddArg("n", static_cast<int64_t>(3));
  }
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (json.h is the real
  // serializer under test elsewhere).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, MaxEventsCapsMemoryAndCountsDrops) {
  TraceRecorder recorder;
  recorder.set_max_events(100);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span(&recorder, "capped", "test");
  }
  // Memory stays flat at the cap no matter how long the run: the buffer
  // holds exactly max_events and everything beyond is counted, not stored.
  EXPECT_EQ(recorder.size(), 100u);
  EXPECT_EQ(recorder.Events().size(), 100u);
  EXPECT_EQ(recorder.dropped_events(), 900u);
}

TEST(TraceTest, CapStaysFlatUnderConcurrentRecording) {
  TraceRecorder recorder;
  recorder.set_max_events(64);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&recorder, "hammer", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.size(), 64u);
  // Stored + dropped accounts for every span exactly once.
  EXPECT_EQ(recorder.size() + recorder.dropped_events(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

TEST(TraceTest, AttachedFlightStillSeesDroppedEvents) {
  FlightRecorder flight;
  TraceRecorder recorder;
  recorder.set_max_events(4);
  recorder.AttachFlight(&flight);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(&recorder, "forwarded", "test");
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  // The flight ring is independent of the recorder's cap: every span is
  // forwarded, so the last-moments evidence survives even after the
  // recorder stops storing.
  EXPECT_EQ(flight.recorded(), 10u);
}

TEST(TraceTest, ConcurrentRecordingKeepsEveryEvent) {
  TraceRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&recorder, "hammer", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

}  // namespace
}  // namespace usep::obs
