// Tests the perf_event_open wrapper's two promises: the derived-rate and
// multiplexing math is exact, and an unavailable backend (denied syscall,
// USEP_PERF_DISABLE, ForceUnavailableForTest) degrades to a clean null —
// inert groups, nullptr thread handles, an explanatory reason — never an
// error.  The real-syscall path additionally runs when the host permits it,
// so a developer machine exercises the live backend while locked-down CI
// exercises the null one with the same binary.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace usep::obs {
namespace {

// Restores the forced-unavailable override even when a test fails.
class ForcedUnavailable {
 public:
  ForcedUnavailable() { PerfCounterGroup::ForceUnavailableForTest(true); }
  ~ForcedUnavailable() { PerfCounterGroup::ForceUnavailableForTest(false); }
};

TEST(PerfCounterValuesTest, DerivedRatesRequireBothCounters) {
  PerfCounterValues values;
  values.value[static_cast<int>(PerfCounter::kCycles)] = 1000;
  values.value[static_cast<int>(PerfCounter::kInstructions)] = 2500;
  // Nothing is marked valid yet, so the ratios must refuse to divide.
  EXPECT_EQ(values.Ipc(), 0.0);
  EXPECT_EQ(values.CacheMissRate(), 0.0);
  EXPECT_EQ(values.BranchMissesPerKiloInstruction(), 0.0);

  values.valid = (1u << static_cast<int>(PerfCounter::kCycles)) |
                 (1u << static_cast<int>(PerfCounter::kInstructions));
  EXPECT_DOUBLE_EQ(values.Ipc(), 2.5);
  // Cache counters still absent.
  EXPECT_EQ(values.CacheMissRate(), 0.0);

  values.valid |= (1u << static_cast<int>(PerfCounter::kCacheReferences)) |
                  (1u << static_cast<int>(PerfCounter::kCacheMisses)) |
                  (1u << static_cast<int>(PerfCounter::kBranchMisses));
  values.value[static_cast<int>(PerfCounter::kCacheReferences)] = 400;
  values.value[static_cast<int>(PerfCounter::kCacheMisses)] = 100;
  values.value[static_cast<int>(PerfCounter::kBranchMisses)] = 5;
  EXPECT_DOUBLE_EQ(values.CacheMissRate(), 0.25);
  EXPECT_DOUBLE_EQ(values.BranchMissesPerKiloInstruction(), 2.0);
}

TEST(PerfCounterValuesTest, ZeroDenominatorsYieldZeroNotNan) {
  PerfCounterValues values;
  values.valid = ~0u;
  EXPECT_EQ(values.Ipc(), 0.0);
  EXPECT_EQ(values.CacheMissRate(), 0.0);
  EXPECT_EQ(values.BranchMissesPerKiloInstruction(), 0.0);
}

TEST(PerfCounterValuesTest, DeltaSinceIntersectsValidityAndSaturates) {
  PerfCounterValues start, end;
  start.valid = (1u << static_cast<int>(PerfCounter::kCycles)) |
                (1u << static_cast<int>(PerfCounter::kInstructions));
  end.valid = (1u << static_cast<int>(PerfCounter::kCycles)) |
              (1u << static_cast<int>(PerfCounter::kCacheMisses));
  start.value[static_cast<int>(PerfCounter::kCycles)] = 100;
  end.value[static_cast<int>(PerfCounter::kCycles)] = 350;
  // A counter that went "backwards" (multiplexing estimate jitter) clamps
  // to zero instead of wrapping to 2^64.
  start.value[static_cast<int>(PerfCounter::kInstructions)] = 900;
  end.value[static_cast<int>(PerfCounter::kInstructions)] = 800;
  end.scaling = 1.5;

  const PerfCounterValues delta = end.DeltaSince(start);
  EXPECT_EQ(delta.valid, 1u << static_cast<int>(PerfCounter::kCycles));
  EXPECT_EQ(delta.cycles(), 250u);
  EXPECT_EQ(delta.get(PerfCounter::kInstructions), 0u);
  EXPECT_DOUBLE_EQ(delta.scaling, 1.5);
}

TEST(PerfCounterValuesTest, AccumulateKeepsWorstScalingAndSaturates) {
  PerfCounterValues total;
  total.valid = 1u << static_cast<int>(PerfCounter::kCycles);
  total.value[static_cast<int>(PerfCounter::kCycles)] = ~0ull - 5;
  total.scaling = 1.2;

  PerfCounterValues more;
  more.valid = 1u << static_cast<int>(PerfCounter::kInstructions);
  more.value[static_cast<int>(PerfCounter::kCycles)] = 100;
  more.scaling = 1.0;

  total.Accumulate(more);
  EXPECT_EQ(total.value[static_cast<int>(PerfCounter::kCycles)], ~0ull);
  EXPECT_TRUE(total.has(PerfCounter::kCycles));
  EXPECT_TRUE(total.has(PerfCounter::kInstructions));
  EXPECT_DOUBLE_EQ(total.scaling, 1.2);

  total.SubtractClamped(more);
  // ~0ull - 100, but the earlier saturation already capped the value; the
  // subtraction itself must not wrap below zero either.
  PerfCounterValues bigger;
  bigger.value[static_cast<int>(PerfCounter::kCycles)] = ~0ull;
  total.SubtractClamped(bigger);
  EXPECT_EQ(total.cycles(), 0u);
}

TEST(ApplyScalingTest, MatchesPerfStatExtrapolation) {
  // Fully scheduled: raw passes through.
  EXPECT_EQ(internal::ApplyScaling(1000, 500, 500), 1000u);
  // running > enabled (clock skew inside the kernel): still raw.
  EXPECT_EQ(internal::ApplyScaling(1000, 500, 600), 1000u);
  // Half-scheduled group: counts double.
  EXPECT_EQ(internal::ApplyScaling(1000, 1000, 500), 2000u);
  // 1/4 scheduled: quadruple.
  EXPECT_EQ(internal::ApplyScaling(300, 4000, 1000), 1200u);
  // Never scheduled: zero, not a division by zero.
  EXPECT_EQ(internal::ApplyScaling(1000, 500, 0), 0u);
}

TEST(PerfCounterGroupTest, ForcedUnavailableIsACompleteNullBackend) {
  const ForcedUnavailable guard;
  EXPECT_FALSE(PerfCounterGroup::Supported());
  EXPECT_STREQ(PerfCounterGroup::UnavailableReason(),
               "forced unavailable for test");

  const PerfCounterGroup group;
  EXPECT_FALSE(group.active());
  EXPECT_EQ(group.valid_mask(), 0u);
  PerfCounterValues values;
  values.valid = ~0u;  // Read must zero the output even on failure.
  EXPECT_FALSE(group.Read(&values));
  EXPECT_EQ(values.valid, 0u);

  // ThreadPerfCounters caches per thread, so probe from a fresh thread to
  // see the forced-null path.
  const PerfCounterGroup* handle = &group;  // non-null sentinel
  std::thread probe([&handle] { handle = ThreadPerfCounters(); });
  probe.join();
  EXPECT_EQ(handle, nullptr);
}

TEST(PerfCounterGroupTest, UnavailableReasonEmptyExactlyWhenSupported) {
  if (PerfCounterGroup::Supported()) {
    EXPECT_STREQ(PerfCounterGroup::UnavailableReason(), "");
  } else {
    EXPECT_STRNE(PerfCounterGroup::UnavailableReason(), "");
  }
}

TEST(PerfCounterGroupTest, LiveBackendCountsForwardWhenHostPermits) {
  if (!PerfCounterGroup::Supported()) {
    GTEST_SKIP() << "perf unavailable: "
                 << PerfCounterGroup::UnavailableReason();
  }
  PerfCounterGroup* group = ThreadPerfCounters();
  ASSERT_NE(group, nullptr);
  ASSERT_TRUE(group->active());

  PerfCounterValues before;
  ASSERT_TRUE(group->Read(&before));
  // The task-clock leader always opens (software event), so at minimum
  // that counter is valid and advances while we burn CPU.
  ASSERT_TRUE(before.has(PerfCounter::kTaskClockNs));

  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<uint64_t>(i);
  PerfCounterValues after;
  ASSERT_TRUE(group->Read(&after));
  const PerfCounterValues delta = after.DeltaSince(before);
  EXPECT_GT(delta.task_clock_ns(), 0u);
  if (delta.has(PerfCounter::kInstructions)) {
    EXPECT_GT(delta.instructions(), 0u);
  }
  EXPECT_GT(delta.scaling, 0.0);
}

TEST(TracePerfTest, SpansCarryNoCounterFieldsWhenBackendIsNull) {
  const ForcedUnavailable guard;
  TraceRecorder recorder;
  recorder.set_collect_perf(true);
  // The span's counter snapshot happens on a fresh thread so the forced
  // null backend is what ThreadPerfCounters() sees (it caches per thread).
  std::thread spanner([&recorder] {
    const TraceSpan span(&recorder, "phase");
    (void)span;
  });
  spanner.join();
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].has_perf);
}

}  // namespace
}  // namespace usep::obs
