#include "obs/json.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace usep::obs {
namespace {

TEST(JsonEscapeTest, PassesPlainAsciiThrough) {
  EXPECT_EQ(JsonEscape("hello world 123 -_.:/"), "hello world 123 -_.:/");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
}

TEST(JsonEscapeTest, EscapesCommonWhitespaceControls) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
}

TEST(JsonEscapeTest, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, PassesNonAsciiUtf8Through) {
  // Multi-byte UTF-8 sequences must survive byte-for-byte; JSON allows raw
  // UTF-8 inside string literals.
  const std::string city = "T\xc5\x8dky\xc5\x8d";          // Tōkyō.
  const std::string emoji = "\xf0\x9f\x8e\x89";            // Party popper.
  EXPECT_EQ(JsonEscape(city), city);
  EXPECT_EQ(JsonEscape(emoji), emoji);
}

TEST(JsonNumberTest, FiniteValuesRoundTrip) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(-1.0), "-1");
  // %.17g keeps doubles exact through a parse round trip.
  const double pi = 3.141592653589793;
  EXPECT_DOUBLE_EQ(std::stod(JsonNumber(pi)), pi);
}

TEST(JsonNumberTest, NonFiniteClampsToZero) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "0");
}

TEST(JsonWriterTest, NonFiniteDoublesStayParseable) {
  std::ostringstream out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.KvDouble("nan", std::nan(""));
  writer.KvDouble("inf", std::numeric_limits<double>::infinity());
  writer.KvDouble("ok", 1.5);
  writer.EndObject();
  EXPECT_EQ(out.str(), "{\"nan\":0,\"inf\":0,\"ok\":1.5}");
}

TEST(JsonWriterTest, EscapesKeysAndValues) {
  std::ostringstream out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.KvString("we\"ird", "line\nbreak");
  writer.EndObject();
  EXPECT_EQ(out.str(), "{\"we\\\"ird\":\"line\\nbreak\"}");
}

TEST(JsonWriterTest, CommasOnlyBetweenSiblings) {
  std::ostringstream out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.KvInt("a", 1);
  writer.Key("b");
  writer.BeginArray();
  writer.Int(1);
  writer.Int(2);
  writer.BeginObject();
  writer.EndObject();
  writer.EndArray();
  writer.KvBool("c", true);
  writer.EndObject();
  EXPECT_EQ(out.str(), "{\"a\":1,\"b\":[1,2,{}],\"c\":true}");
}

// A minimal structural validator: every document the writer produces must
// have balanced braces/brackets outside string literals.  (Full JSON
// validation lives in scripts/check_obs_json.py; this guards the writer's
// invariant at the unit level.)
bool BalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(JsonWriterTest, HostileStringsKeepDocumentBalanced) {
  const std::string hostile[] = {
      "}{",
      "\"]\",[{",
      std::string("\x01\x02\0\x1f", 4),
      "backslash at end \\",
      "\xf0\x9f\x8e\x89 unicode { mixed ] with \" structure",
  };
  for (const std::string& value : hostile) {
    std::ostringstream out;
    JsonWriter writer(&out);
    writer.BeginObject();
    writer.KvString("key", value);
    writer.Key(value);
    writer.String("value");
    writer.EndObject();
    EXPECT_TRUE(BalancedJson(out.str())) << out.str();
  }
}

TEST(JsonWriterTest, RawEmitsVerbatim) {
  std::ostringstream out;
  JsonWriter writer(&out);
  writer.BeginArray();
  writer.Raw("{\"pre\":1}");
  writer.Int(2);
  writer.EndArray();
  EXPECT_EQ(out.str(), "[{\"pre\":1},2]");
}

}  // namespace
}  // namespace usep::obs
