#include "obs/profile.h"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace usep::obs {
namespace {

TraceEvent Span(const char* name, double ts_us, double dur_us, int tid = 0) {
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = tid;
  return event;
}

TEST(ProfileTest, EmptyEvents) {
  const Profile profile = Profile::FromEvents({});
  EXPECT_TRUE(profile.phases.empty());
  EXPECT_EQ(profile.num_spans, 0);
  EXPECT_EQ(profile.num_threads, 0);
  EXPECT_DOUBLE_EQ(profile.root_total_us, 0.0);
}

TEST(ProfileTest, SelfTimeSubtractsNestedSpans) {
  // parent [0, 100] contains child-a [10, 40] and child-b [50, 70];
  // child-a contains grandchild [20, 30].
  const std::vector<TraceEvent> events = {
      Span("parent", 0, 100),
      Span("child-a", 10, 30),
      Span("grandchild", 20, 10),
      Span("child-b", 50, 20),
  };
  const Profile profile = Profile::FromEvents(events);
  ASSERT_EQ(profile.phases.size(), 4u);
  EXPECT_EQ(profile.num_spans, 4);
  EXPECT_EQ(profile.num_threads, 1);
  EXPECT_DOUBLE_EQ(profile.root_total_us, 100.0);

  auto find = [&](const std::string& name) -> const PhaseProfile& {
    for (const PhaseProfile& phase : profile.phases) {
      if (phase.name == name) return phase;
    }
    ADD_FAILURE() << "phase " << name << " missing";
    static PhaseProfile missing;
    return missing;
  };
  EXPECT_DOUBLE_EQ(find("parent").total_us, 100.0);
  EXPECT_DOUBLE_EQ(find("parent").self_us, 50.0);  // 100 - 30 - 20.
  EXPECT_DOUBLE_EQ(find("child-a").total_us, 30.0);
  EXPECT_DOUBLE_EQ(find("child-a").self_us, 20.0);  // 30 - 10.
  EXPECT_DOUBLE_EQ(find("grandchild").self_us, 10.0);
  EXPECT_DOUBLE_EQ(find("child-b").self_us, 20.0);

  // Sorted by self time descending.
  EXPECT_EQ(profile.phases[0].name, "parent");
}

TEST(ProfileTest, RepeatedPhasesAccumulate) {
  const std::vector<TraceEvent> events = {
      Span("loop", 0, 10),
      Span("loop", 20, 10),
      Span("loop", 40, 10),
  };
  const Profile profile = Profile::FromEvents(events);
  ASSERT_EQ(profile.phases.size(), 1u);
  EXPECT_EQ(profile.phases[0].count, 3);
  EXPECT_DOUBLE_EQ(profile.phases[0].total_us, 30.0);
  EXPECT_DOUBLE_EQ(profile.phases[0].self_us, 30.0);
  EXPECT_DOUBLE_EQ(profile.root_total_us, 30.0);
}

TEST(ProfileTest, ThreadsAreIndependentHierarchies) {
  // The same [0, 100] window on two tids: no cross-thread nesting.
  const std::vector<TraceEvent> events = {
      Span("work", 0, 100, /*tid=*/0),
      Span("work", 0, 100, /*tid=*/1),
      Span("inner", 10, 20, /*tid=*/1),
  };
  const Profile profile = Profile::FromEvents(events);
  EXPECT_EQ(profile.num_threads, 2);
  EXPECT_DOUBLE_EQ(profile.root_total_us, 200.0);
  for (const PhaseProfile& phase : profile.phases) {
    if (phase.name == "work") {
      EXPECT_EQ(phase.count, 2);
      EXPECT_DOUBLE_EQ(phase.total_us, 200.0);
      EXPECT_DOUBLE_EQ(phase.self_us, 180.0);  // tid 1 lost 20 to inner.
      ASSERT_EQ(phase.thread_total_us.size(), 2u);
      EXPECT_DOUBLE_EQ(phase.thread_total_us.at(0), 100.0);
      EXPECT_DOUBLE_EQ(phase.thread_total_us.at(1), 100.0);
    }
  }
}

TEST(ProfileTest, MetadataEventsIgnored) {
  TraceEvent metadata;
  metadata.name = "thread_name";
  metadata.phase = 'M';
  const Profile profile = Profile::FromEvents({metadata, Span("a", 0, 5)});
  ASSERT_EQ(profile.phases.size(), 1u);
  EXPECT_EQ(profile.phases[0].name, "a");
}

TEST(ProfileTest, FromRecorderUsesRealSpans) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer");
    TraceSpan inner(&recorder, "inner");
  }
  const Profile profile = Profile::FromRecorder(recorder);
  ASSERT_EQ(profile.phases.size(), 2u);
  EXPECT_EQ(profile.num_spans, 2);
  for (const PhaseProfile& phase : profile.phases) {
    EXPECT_GE(phase.total_us, phase.self_us);
    EXPECT_GE(phase.self_us, 0.0);
  }
}

TEST(ProfileTest, PrintTableMentionsEveryPhase) {
  const std::vector<TraceEvent> events = {
      Span("plan/RatioGreedy", 0, 100),
      Span("rg/heap-loop", 10, 50),
  };
  std::ostringstream out;
  Profile::FromEvents(events).PrintTable(out);
  const std::string table = out.str();
  EXPECT_NE(table.find("plan/RatioGreedy"), std::string::npos);
  EXPECT_NE(table.find("rg/heap-loop"), std::string::npos);
  EXPECT_NE(table.find("self_ms"), std::string::npos);
}

TEST(ProfileTest, WriteJsonEmitsOneObjectPerPhase) {
  const std::vector<TraceEvent> events = {
      Span("a", 0, 10),
      Span("b", 20, 5),
  };
  std::ostringstream out;
  JsonWriter json(&out);
  Profile::FromEvents(events).WriteJson(&json);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"phase\":\"a\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\":\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"self_us\":"), std::string::npos);
  EXPECT_NE(text.find("\"by_thread\":"), std::string::npos);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
}

}  // namespace
}  // namespace usep::obs
