#include "obs/report.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace usep::obs {
namespace {

RunReport SampleReport() {
  RunReport report;
  report.tool = "unit-test";
  report.instance_label = "synthetic \"quoted\" label";
  report.num_events = 5;
  report.num_users = 12;
  report.total_capacity = 37;
  report.config.emplace_back("planners", "DeDPO+RG,RatioGreedy");
  report.config.emplace_back("threads", "4");

  PlannerRunReport run;
  run.planner = "RatioGreedy";
  run.termination = "completed";
  run.wall_seconds = 0.125;
  run.cpu_seconds = 0.0625;
  run.iterations = 42;
  run.heap_pushes = 99;
  run.logical_peak_bytes = 4096;
  run.utility = 17.5;
  run.assignments = 11;
  run.planned_users = 9;
  report.runs.push_back(run);

  report.has_aggregate = true;
  report.aggregate = run;
  report.aggregate.planner = "<aggregate>";

  report.process_cpu_seconds = 0.25;
  report.memhook_active = true;
  report.memhook_peak_bytes = 1 << 20;
  return report;
}

TEST(ReportTest, SerializesEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("usep.planner.runs")->Increment(3);
  registry.GetGauge("usep.gauge")->Set(1.5);
  registry.GetHistogram("usep.hist")->Observe(0.002);

  RunReport report = SampleReport();
  report.metrics = registry.Snapshot();

  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"num_events\":5"), std::string::npos);
  EXPECT_NE(json.find("\"total_capacity\":37"), std::string::npos);
  // Quotes in the label must be escaped.
  EXPECT_NE(json.find("synthetic \\\"quoted\\\" label"), std::string::npos);
  EXPECT_NE(json.find("\"planners\":\"DeDPO+RG,RatioGreedy\""),
            std::string::npos);
  EXPECT_NE(json.find("\"runs\":["), std::string::npos);
  EXPECT_NE(json.find("\"planner\":\"RatioGreedy\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":"), std::string::npos);
  EXPECT_NE(json.find("\"planner\":\"<aggregate>\""), std::string::npos);
  EXPECT_NE(json.find("\"memhook\":"), std::string::npos);
  EXPECT_NE(json.find("\"active\":true"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"usep.planner.runs\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"usep.hist\":{\"count\":1"), std::string::npos);
  // PR 4 additions: CPU time at run and report level, histogram quantiles.
  EXPECT_NE(json.find("\"cpu_seconds\":0.0625"), std::string::npos);
  EXPECT_NE(json.find("\"process_cpu_seconds\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"quantiles\":{\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ReportTest, OmitsAggregateWhenUnset) {
  RunReport report = SampleReport();
  report.has_aggregate = false;
  std::ostringstream out;
  report.WriteJson(out);
  EXPECT_EQ(out.str().find("\"aggregate\""), std::string::npos);
}

TEST(ReportTest, EmptyReportIsStillWellFormed) {
  RunReport report;
  report.tool = "empty";
  std::ostringstream out;
  report.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"runs\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  // Balanced braces as a cheap well-formedness proxy.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportTest, WriteJsonFileReportsBadPath) {
  RunReport report;
  std::string error;
  EXPECT_FALSE(report.WriteJsonFile("/nonexistent-dir/report.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace usep::obs
