#include "obs/metrics.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace usep::obs {
namespace {

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42);
}

TEST(MetricsTest, LookupReturnsSameObject) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same");
  Counter* b = registry.GetCounter("same");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1);
}

TEST(MetricsTest, NameTakenByOtherKindReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("clash"), nullptr);
  EXPECT_EQ(registry.GetGauge("clash"), nullptr);
  EXPECT_EQ(registry.GetHistogram("clash"), nullptr);
  // And the original keeps working.
  EXPECT_NE(registry.GetCounter("clash"), nullptr);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 1.5);
}

TEST(MetricsTest, HistogramBucketsExponential) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // Bounds 1, 2, 4, 8 + overflow.
  Histogram* histogram = registry.GetHistogram("test.histogram", options);
  ASSERT_NE(histogram, nullptr);
  ASSERT_EQ(histogram->num_buckets(), 4);
  EXPECT_DOUBLE_EQ(histogram->UpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(histogram->UpperBound(3), 8.0);

  histogram->Observe(0.5);   // bucket 0
  histogram->Observe(1.0);   // bucket 0 (inclusive upper bound)
  histogram->Observe(3.0);   // bucket 2
  histogram->Observe(100.0); // overflow
  EXPECT_EQ(histogram->Count(), 4);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 104.5);
  EXPECT_EQ(histogram->BucketCount(0), 2);
  EXPECT_EQ(histogram->BucketCount(1), 0);
  EXPECT_EQ(histogram->BucketCount(2), 1);
  EXPECT_EQ(histogram->BucketCount(3), 0);
  EXPECT_EQ(histogram->BucketCount(4), 1);  // Overflow bucket.
}

TEST(MetricsTest, HistogramFirstRegistrationWins) {
  MetricsRegistry registry;
  HistogramOptions first;
  first.num_buckets = 4;
  Histogram* a = registry.GetHistogram("h", first);
  HistogramOptions second;
  second.num_buckets = 10;
  Histogram* b = registry.GetHistogram("h", second);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->num_buckets(), 4);
}

TEST(MetricsTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(2);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("g")->Set(3.0);
  registry.GetHistogram("h")->Observe(0.25);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[0].value, 1);
  EXPECT_EQ(snapshot.counters[1].name, "b.counter");
  EXPECT_EQ(snapshot.counters[1].value, 2);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 3.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_EQ(snapshot.histograms[0].bucket_counts.size(),
            snapshot.histograms[0].upper_bounds.size() + 1);
}

TEST(MetricsTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("ghost"), nullptr);
  EXPECT_EQ(registry.FindGauge("ghost"), nullptr);
  EXPECT_EQ(registry.FindHistogram("ghost"), nullptr);
  registry.GetCounter("real")->Increment();
  EXPECT_NE(registry.FindCounter("real"), nullptr);
  EXPECT_TRUE(registry.Snapshot().gauges.empty());
}

TEST(HistogramQuantileTest, InterpolatesInsideBucket) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // Bounds 1, 2, 4, 8 + overflow.
  Histogram* histogram = registry.GetHistogram("q.histogram", options);
  // 10 observations, all in bucket (2, 4].
  for (int i = 0; i < 10; ++i) histogram->Observe(3.0);
  // Rank q*10 of 10 lands a fraction q through the bucket [2, 4].
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.9), 3.8);
  EXPECT_DOUBLE_EQ(histogram->Quantile(1.0), 4.0);
}

TEST(HistogramQuantileTest, SpansMultipleBuckets) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram* histogram = registry.GetHistogram("q2.histogram", options);
  // 5 observations in bucket [0, 1], 5 in (4, 8].
  for (int i = 0; i < 5; ++i) histogram->Observe(0.5);
  for (int i = 0; i < 5; ++i) histogram->Observe(6.0);
  // p50 = rank 5 = last observation of the first bucket -> its upper bound.
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 1.0);
  // p90 = rank 9 = 4th of 5 in (4, 8] -> 4 + (9-5)/5 * 4 = 7.2.
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.9), 7.2);
  // Below the first observation clamps to the first bucket's share.
  EXPECT_GT(histogram->Quantile(0.01), 0.0);
}

TEST(HistogramQuantileTest, OverflowClampsToLastBound) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 2;  // Bounds 1, 2 + overflow.
  Histogram* histogram = registry.GetHistogram("q3.histogram", options);
  for (int i = 0; i < 10; ++i) histogram->Observe(100.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.99), 2.0);
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("q4.histogram");
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 0.0);
}

TEST(HistogramQuantileTest, SnapshotAgreesWithLiveHistogram) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("q5.histogram");
  for (int i = 1; i <= 100; ++i) {
    histogram->Observe(static_cast<double>(i) * 1e-3);
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot.histograms[0], q),
                     histogram->Quantile(q))
        << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(HistogramQuantile(snapshot.histograms[0], 0.5),
            HistogramQuantile(snapshot.histograms[0], 0.9));
  EXPECT_LE(HistogramQuantile(snapshot.histograms[0], 0.9),
            HistogramQuantile(snapshot.histograms[0], 0.99));
}

TEST(MetricsTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kUpdates = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Registration from every thread: the registry must serialize the
      // get-or-create and always hand back the same objects.
      Counter* counter = registry.GetCounter("hammer.counter");
      Histogram* histogram = registry.GetHistogram("hammer.histogram");
      for (int i = 0; i < kUpdates; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("hammer.counter")->Value(),
            kThreads * kUpdates);
  EXPECT_EQ(registry.GetHistogram("hammer.histogram")->Count(),
            kThreads * kUpdates);
}

// The exposition-coherence contract: a Snapshot taken WHILE writers hammer
// a histogram must still be internally consistent — its count equals the
// sum of its bucket counts (and sits within the bounds the quantile code
// assumes).  This is what --metrics_out scrapes mid-run, so tearing here
// would surface as impossible statsz files.
TEST(MetricsTest, SnapshotStaysCoherentUnderConcurrentObserves) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("hammer.coherent", HistogramOptions{0.5, 2.0, 12});
  Counter* counter = registry.GetCounter("hammer.coherent.count");

  constexpr int kThreads = 4;
  constexpr int kUpdates = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, counter] {
      for (int i = 0; i < kUpdates; ++i) {
        histogram->Observe(static_cast<double>(i % 100));
        counter->Increment();
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    const MetricsSnapshot::HistogramValue& h = snapshot.histograms[0];
    int64_t bucket_sum = 0;
    for (const int64_t count : h.bucket_counts) bucket_sum += count;
    EXPECT_EQ(bucket_sum, h.count) << "torn snapshot in round " << round;
    EXPECT_GE(h.count, 0);
    EXPECT_LE(h.count, static_cast<int64_t>(kThreads) * kUpdates);
  }

  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.histograms[0].count,
            static_cast<int64_t>(kThreads) * kUpdates);
}

}  // namespace
}  // namespace usep::obs
