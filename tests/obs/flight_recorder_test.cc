#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace usep::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FlightRecorderTest, RecordsSpansAndInstants) {
  FlightRecorder flight;
  flight.RecordSpan("plan/ladder", 123.0, "tier=incremental", 7);
  flight.RecordInstant("serve/mutation", "add_user", 42);
  EXPECT_EQ(flight.recorded(), 2u);

  const std::vector<TraceEvent> events = flight.SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // SnapshotEvents sorts by timestamp; the span's ts is re-anchored to its
  // start, so it precedes the instant recorded "now" after it.
  EXPECT_EQ(events[0].name, "plan/ladder");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_DOUBLE_EQ(events[0].dur_us, 123.0);
  EXPECT_EQ(events[1].name, "serve/mutation");
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorderOptions options;
  options.rings = 3;        // -> 4
  options.slots_per_ring = 100;  // -> 128
  FlightRecorder flight(options);
  EXPECT_EQ(flight.capacity(), 4u * 128u);
}

TEST(FlightRecorderTest, WrapKeepsTheMostRecentEvents) {
  FlightRecorderOptions options;
  options.rings = 1;
  options.slots_per_ring = 16;
  FlightRecorder flight(options);
  for (int64_t i = 0; i < 100; ++i) {
    flight.RecordInstant("event", nullptr, i);
  }
  EXPECT_EQ(flight.recorded(), 100u);

  const std::vector<TraceEvent> events = flight.SnapshotEvents();
  ASSERT_EQ(events.size(), 16u);
  // The single-threaded writer wraps in order, so exactly args 84..99
  // survive (stored as the pre-serialized "arg" value).
  std::set<std::string> args;
  for (const TraceEvent& event : events) {
    ASSERT_EQ(event.args.size(), 1u);  // arg only; detail was null.
    EXPECT_EQ(event.args[0].first, "arg");
    args.insert(event.args[0].second);
  }
  EXPECT_TRUE(args.count("84") == 1 && args.count("99") == 1)
      << "oldest surviving arg: " << *args.begin();
  EXPECT_EQ(args.count("83"), 0u);
}

TEST(FlightRecorderTest, DumpToFileWritesTheJsonEnvelope) {
  const std::string path = TempPath("flight_dump.json");
  FlightRecorder flight;
  flight.RecordSpan("plan/phase", 10.0, "detail", 1);
  flight.RecordInstant("serve/rung-change", "regional", 2);
  ASSERT_TRUE(flight.DumpToFile(path.c_str(), "unit_test"));

  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(dump.find("\"flight\":{\"reason\":\"unit_test\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"wrapped\":0"), std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"plan/phase\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets — the envelope is complete.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '{'),
            std::count(dump.begin(), dump.end(), '}'));
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '['),
            std::count(dump.begin(), dump.end(), ']'));
  // No half-written temp file left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpSanitizesQuotesAndControlBytes) {
  const std::string path = TempPath("flight_sanitize.json");
  FlightRecorder flight;
  flight.RecordInstant("name\"with\\quotes", "line\nbreak\ttab", 0);
  ASSERT_TRUE(flight.DumpToFile(path.c_str(), "unit_test"));

  const std::string dump = ReadFile(path);
  // Quotes and backslashes become apostrophes, control bytes spaces — the
  // dump never needs JSON escape machinery in a signal handler.
  EXPECT_NE(dump.find("name'with'quotes"), std::string::npos);
  EXPECT_NE(dump.find("line break tab"), std::string::npos);
  for (const char c : dump) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
        << "control byte in dump: " << static_cast<int>(c);
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ForwardsTraceEventsWithJoinedArgs) {
  FlightRecorder flight;
  TraceEvent event;
  event.name = "plan/local_search";
  event.phase = 'X';
  event.ts_us = 10.0;
  event.dur_us = 250.0;
  event.args.emplace_back("rounds", "3");
  event.args.emplace_back("gain", "1.5");
  flight.RecordTraceEvent(event);

  TraceEvent metadata;
  metadata.name = "thread_name";
  metadata.phase = 'M';
  flight.RecordTraceEvent(metadata);  // Metadata never enters the ring.

  const std::vector<TraceEvent> events = flight.SnapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "plan/local_search");
  EXPECT_DOUBLE_EQ(events[0].dur_us, 250.0);
  ASSERT_FALSE(events[0].args.empty());
  EXPECT_NE(events[0].args[0].second.find("rounds=3"), std::string::npos);
  EXPECT_NE(events[0].args[0].second.find("gain=1.5"), std::string::npos);
}

// Writers on many threads while a reader snapshots and dumps concurrently:
// the seqlock protocol must only ever surface fully-committed slots, and
// recorded() must count every write exactly once.
TEST(FlightRecorderTest, ConcurrentWritersAndReadersStayCoherent) {
  FlightRecorderOptions options;
  options.rings = 4;
  options.slots_per_ring = 64;
  FlightRecorder flight(options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&flight, t] {
      for (int i = 0; i < kPerThread; ++i) {
        flight.RecordInstant("hammer/event", "writer", t * kPerThread + i);
      }
    });
  }

  // Concurrent snapshots: every surfaced event must be fully formed.
  for (int i = 0; i < 50; ++i) {
    const std::vector<TraceEvent> snapshot = flight.SnapshotEvents();
    EXPECT_LE(snapshot.size(), flight.capacity());
    for (const TraceEvent& event : snapshot) {
      EXPECT_EQ(event.name, "hammer/event");
      EXPECT_TRUE(event.phase == 'i' || event.phase == 'X');
    }
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(flight.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const std::string path = TempPath("flight_hammer.json");
  ASSERT_TRUE(flight.DumpToFile(path.c_str(), "hammer"));
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usep::obs
