#include "obs/exposition.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace usep::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PrometheusNameTest, SanitizesToTheMetricCharset) {
  EXPECT_EQ(PrometheusName("usep.serve.replan_ms"), "usep_serve_replan_ms");
  EXPECT_EQ(PrometheusName("a:b"), "a:b");  // Colons are legal.
  EXPECT_EQ(PrometheusName("weird name-with/chars"), "weird_name_with_chars");
  // A leading digit is illegal; it gets prefixed.
  EXPECT_EQ(PrometheusName("2fast"), "_2fast");
  EXPECT_EQ(PrometheusName(""), "");
}

TEST(ExpositionTest, PrometheusTextCarriesAllMetricKinds) {
  MetricsRegistry registry;
  registry.GetCounter("usep.serve.mutations")->Increment(42);
  registry.GetGauge("usep.serve.rung")->Set(2.0);
  Histogram* histogram = registry.GetHistogram(
      "usep.serve.replan_ms", HistogramOptions{1.0, 2.0, 3});
  histogram->Observe(0.5);   // Bucket 0 (<= 1).
  histogram->Observe(3.0);   // Bucket 2 (<= 4).
  histogram->Observe(100.0); // Overflow.

  std::ostringstream out;
  WritePrometheusText(registry.Snapshot(), out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE usep_serve_mutations counter"),
            std::string::npos);
  EXPECT_NE(text.find("usep_serve_mutations 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE usep_serve_rung gauge"), std::string::npos);
  EXPECT_NE(text.find("usep_serve_rung 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE usep_serve_replan_ms histogram"),
            std::string::npos);
  // Cumulative buckets: 1, 1, 2 finite, then everything at +Inf.
  EXPECT_NE(text.find("usep_serve_replan_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("usep_serve_replan_ms_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("usep_serve_replan_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("usep_serve_replan_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("usep_serve_replan_ms_sum 103.5"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ExpositionTest, StatszJsonRoundTripsTheSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Increment(7);
  registry.GetGauge("g.one")->Set(-1.5);
  Histogram* histogram =
      registry.GetHistogram("h.one", HistogramOptions{1.0, 2.0, 2});
  histogram->Observe(0.5);
  histogram->Observe(1.5);

  std::ostringstream out;
  WriteStatszJson(registry.Snapshot(), out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"statsz\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":-1.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"h.one\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // The three exposed quantiles are present and the bucket arrays align.
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\":[1,1,0]"), std::string::npos);
}

TEST(ExpositionTest, WriteMetricsFilesPublishesBothFormatsAtomically) {
  MetricsRegistry registry;
  registry.GetCounter("usep.serve.mutations")->Increment(5);
  const std::string path = ::testing::TempDir() + "/exposition_metrics.json";

  std::string error;
  ASSERT_TRUE(WriteMetricsFiles(registry.Snapshot(), path, &error)) << error;
  const std::string json = ReadFile(path);
  const std::string prom = ReadFile(path + ".prom");
  EXPECT_NE(json.find("\"kind\":\"statsz\""), std::string::npos);
  EXPECT_NE(prom.find("usep_serve_mutations 5"), std::string::npos);
  // No temp files survive the rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  EXPECT_FALSE(std::ifstream(path + ".prom.tmp").good());

  // Republishing overwrites in place (the periodic --metrics_out loop).
  registry.GetCounter("usep.serve.mutations")->Increment(1);
  ASSERT_TRUE(WriteMetricsFiles(registry.Snapshot(), path, &error)) << error;
  EXPECT_NE(ReadFile(path + ".prom").find("usep_serve_mutations 6"),
            std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".prom").c_str());
}

TEST(ExpositionTest, WriteMetricsFilesReportsUnwritablePaths) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_FALSE(WriteMetricsFiles(registry.Snapshot(),
                                 "/nonexistent-dir/metrics.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace usep::obs
