// Tests the SIGPROF stack sampler end to end: folded output stays
// well-formed while ThreadPool workers burn CPU concurrently, degraded
// environments (sanitizers, non-Linux) fail Start() cleanly but still
// produce a valid empty artifact, and the temp-file + rename dump never
// leaves a torn file.  Sample CONTENT (which functions appear) is
// deliberately not asserted — inlining, symbol visibility, and CPU-time
// starvation on loaded CI runners make that non-deterministic; the folded
// GRAMMAR and the counters' coherence are the contract.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/sampler.h"

namespace usep::obs {
namespace {

// Parses folded-stack text, failing the test on any malformed line.
// Returns the total sample count across stacks.
uint64_t CheckFolded(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  uint64_t total = 0;
  std::vector<std::string> seen;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "no count in: " << line;
      continue;
    }
    const std::string stack = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    EXPECT_FALSE(stack.empty()) << line;
    EXPECT_FALSE(count.empty()) << line;
    for (const char c : count) {
      EXPECT_TRUE(c >= '0' && c <= '9') << "non-digit count in: " << line;
    }
    // No empty frame: stacks neither start/end with ';' nor contain ';;'.
    EXPECT_NE(stack.front(), ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    for (const std::string& previous : seen) {
      EXPECT_NE(previous, stack) << "duplicate stack (writer should fold)";
    }
    seen.push_back(stack);
    total += std::strtoull(count.c_str(), nullptr, 10);
  }
  return total;
}

// Spins CPU so the per-thread CPU-time timers actually fire.
void BurnCpu(int64_t iterations) {
  volatile uint64_t sink = 1;
  for (int64_t i = 0; i < iterations; ++i) {
    sink = sink * 2862933555777941757ull + 3037000493ull;
  }
}

TEST(StackSamplerTest, FoldedOutputWellFormedUnderParallelFor) {
  StackSampler& sampler = StackSampler::Global();
  sampler.Reset();

  SamplerOptions options;
  options.hz = 997;  // Aggressive rate so even a short test collects some.
  std::string error;
  const bool started = sampler.Start(options, &error);
  if (!started) {
    // Sanitizer build or exotic platform: the degraded path must still
    // produce a valid (empty) folded stream.
    EXPECT_FALSE(error.empty());
    std::ostringstream out;
    sampler.WriteFoldedStream(out);
    CheckFolded(out.str());
    GTEST_SKIP() << "sampler unavailable: " << error;
  }
  EXPECT_TRUE(sampler.running());

  // Concurrent samplable work: pool workers register themselves, so their
  // timers arm mid-run — the racy path the registry mutex protects.
  ThreadPool pool(4);
  pool.ParallelFor(0, 8, 8, [](int /*block*/, int64_t begin, int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      BurnCpu(4000000);
    }
  });
  BurnCpu(4000000);  // The registered main thread samples too.

  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  std::ostringstream out;
  sampler.WriteFoldedStream(out);
  const uint64_t folded_total = CheckFolded(out.str());
  // Folded counts and SampleCount() describe the same collection.
  EXPECT_EQ(folded_total, sampler.SampleCount());
  // ~40ms+ of CPU at 997 Hz: expect at least a handful of samples.  This
  // can only be flaky toward zero if CPU time was not consumed at all.
  EXPECT_GT(sampler.SampleCount(), 0u);
}

TEST(StackSamplerTest, StopIsIdempotentAndSamplesSurviveIt) {
  StackSampler& sampler = StackSampler::Global();
  sampler.Stop();
  sampler.Stop();  // Second stop must be harmless.
  std::ostringstream first;
  sampler.WriteFoldedStream(first);
  std::ostringstream second;
  sampler.WriteFoldedStream(second);
  // Dumping is read-only: two writes agree.
  EXPECT_EQ(first.str(), second.str());
}

TEST(StackSamplerTest, WriteFoldedProducesFileAtomically) {
  StackSampler& sampler = StackSampler::Global();
  const std::string path =
      testing::TempDir() + "/sampler_test_stacks.folded";
  std::string error;
  ASSERT_TRUE(sampler.WriteFolded(path, &error)) << error;
  // The temp file was renamed away.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  CheckFolded(content.str());
  std::remove(path.c_str());
}

TEST(StackSamplerTest, WriteFoldedReportsUnwritablePath) {
  StackSampler& sampler = StackSampler::Global();
  std::string error;
  EXPECT_FALSE(sampler.WriteFolded(
      "/nonexistent-dir-for-sampler-test/stacks.folded", &error));
  EXPECT_FALSE(error.empty());
}

TEST(StackSamplerTest, ResetClearsCollection) {
  StackSampler& sampler = StackSampler::Global();
  sampler.Reset();
  EXPECT_EQ(sampler.SampleCount(), 0u);
  EXPECT_EQ(sampler.DroppedSamples(), 0u);
  EXPECT_EQ(sampler.InAllocatorSamples(), 0u);
  std::ostringstream out;
  sampler.WriteFoldedStream(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(StackSamplerTest, DoubleStartRefusedWhileRunning) {
  StackSampler& sampler = StackSampler::Global();
  sampler.Reset();
  SamplerOptions options;
  std::string error;
  if (!sampler.Start(options, &error)) {
    GTEST_SKIP() << "sampler unavailable: " << error;
  }
  std::string second_error;
  EXPECT_FALSE(sampler.Start(options, &second_error));
  EXPECT_FALSE(second_error.empty());
  sampler.Stop();
}

TEST(StackSamplerTest, RegisterUnregisterAreIdempotent) {
  // Repeated registration of the same thread must not leak registry
  // entries or crash; unregister of an unregistered thread is a no-op.
  StackSampler::RegisterCurrentThread();
  StackSampler::RegisterCurrentThread();
  StackSampler::UnregisterCurrentThread();
  StackSampler::UnregisterCurrentThread();
  // And the sequence is restartable.
  StackSampler::RegisterCurrentThread();
  StackSampler::UnregisterCurrentThread();
}

}  // namespace
}  // namespace usep::obs
