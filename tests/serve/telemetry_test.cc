// End-to-end checks of the live serving telemetry: the flight ring dumps at
// the moments evidence is about to be lost (rung change, journal_broken,
// abandon), recovery is reflected in `usep.serve.*`, and --metrics_out style
// exposition never takes the serving loop down.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace usep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Mutation Join(uint64_t key, Cost budget, Point location,
              std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kUserJoin;
  m.key = key;
  m.budget = budget;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Post(uint64_t key, TimeInterval interval, int capacity,
              Point location) {
  Mutation m;
  m.kind = MutationKind::kEventPost;
  m.key = key;
  m.interval = interval;
  m.capacity = capacity;
  m.location = location;
  return m;
}

ProcessResult Feed(StreamingService* service, const Mutation& m) {
  EXPECT_TRUE(service->Submit(m).ok());
  StatusOr<ProcessResult> result = service->ProcessNext();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : ProcessResult{};
}

TEST(ServeTelemetryTest, RungChangeDumpsTheFlightRing) {
  obs::FlightRecorder flight;
  ServiceOptions options;
  options.flight = &flight;
  options.flight_dump_path = TempPath("telemetry_rung.json");
  // Tiny queue: any backlog beyond one mutation sheds, which runs the
  // validity-only rung and moves the rung away from the initial tier.
  options.queue_capacity = 4;
  options.shed_fraction = 0.25;
  std::remove(options.flight_dump_path.c_str());

  StatusOr<std::unique_ptr<StreamingService>> opened =
      StreamingService::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  StreamingService* service = opened->get();

  // First mutation initializes the rung silently: no dump yet.  (An event
  // with no users is unmaterializable, so it runs validity-only.)
  Feed(service, Post(10, {0, 100}, 4, {0, 0}));
  EXPECT_FALSE(std::ifstream(options.flight_dump_path).good());

  // The first join materializes the world and runs the incremental rung:
  // the climb from validity-only is a "recovered" rung change -> dump.
  Feed(service, Join(1, 1000, {1, 1}, {{10, 0.9}}));
  ASSERT_EQ(service->slo().rung_changes(), 1);
  ASSERT_TRUE(std::ifstream(options.flight_dump_path).good());
  std::remove(options.flight_dump_path.c_str());

  // Backlog -> shed -> back down to validity-only: the descent dumps again.
  for (uint64_t key = 2; key <= 4; ++key) {
    ASSERT_TRUE(service->Submit(Join(key, 1000, {1, 1}, {{10, 0.5}})).ok());
  }
  StatusOr<ProcessResult> shed = service->ProcessNext();
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE(shed->shed);
  EXPECT_EQ(service->slo().rung_changes(), 2);

  const std::string dump = ReadFile(options.flight_dump_path);
  EXPECT_NE(dump.find("\"reason\":\"rung_change\""), std::string::npos);
  EXPECT_NE(dump.find("serve/rung-change"), std::string::npos);
  EXPECT_NE(dump.find("serve/mutation"), std::string::npos);
  std::remove(options.flight_dump_path.c_str());
}

TEST(ServeTelemetryTest, JournalBreakDumpsBeforeTheErrorSurfaces) {
  obs::FlightRecorder flight;
  ServiceOptions options;
  options.flight = &flight;
  options.flight_dump_path = TempPath("telemetry_broken.json");
  options.journal_path = TempPath("telemetry_broken.journal");
  std::remove(options.flight_dump_path.c_str());
  std::remove(options.journal_path.c_str());

  StatusOr<std::unique_ptr<StreamingService>> opened =
      StreamingService::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  StreamingService* service = opened->get();
  Feed(service, Post(10, {0, 100}, 2, {0, 0}));

  ASSERT_TRUE(service->Submit(Join(1, 1000, {1, 1}, {{10, 0.9}})).ok());
  {
    failpoint::ScopedArm arm("serve.journal.append");
    EXPECT_FALSE(service->ProcessNext().ok());
  }
  EXPECT_TRUE(service->journal_broken());

  // The dying moment was captured: the dump exists, names the reason, and
  // holds the journal-broken instant recorded just before it.
  const std::string dump = ReadFile(options.flight_dump_path);
  EXPECT_NE(dump.find("\"reason\":\"journal_broken\""), std::string::npos);
  EXPECT_NE(dump.find("serve/journal-broken"), std::string::npos);
  service->Abandon();
  std::remove(options.flight_dump_path.c_str());
  std::remove(options.journal_path.c_str());
}

TEST(ServeTelemetryTest, RecoveryIsCountedAndAbandonDumps) {
  obs::FlightRecorder flight;
  ServiceOptions options;
  options.flight = &flight;
  options.flight_dump_path = TempPath("telemetry_abandon.json");
  options.journal_path = TempPath("telemetry_recover.journal");
  std::remove(options.flight_dump_path.c_str());
  std::remove(options.journal_path.c_str());

  {
    StatusOr<std::unique_ptr<StreamingService>> service =
        StreamingService::Open(options);
    ASSERT_TRUE(service.ok()) << service.status();
    Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));
    Feed(service->get(), Join(1, 1000, {1, 1}, {{10, 0.9}}));
    (*service)->Abandon();  // Simulated kill: dumps with reason "abandon".
  }
  EXPECT_NE(ReadFile(options.flight_dump_path).find("\"reason\":\"abandon\""),
            std::string::npos);

  // Restart with a registry attached: recovery publishes its own story.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  StatusOr<std::unique_ptr<StreamingService>> recovered =
      StreamingService::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->recovery().replayed_records, 2u);
  EXPECT_EQ(metrics.GetCounter("usep.serve.recoveries")->Value(), 1);
  EXPECT_EQ(
      metrics.GetCounter("usep.serve.recovery.replayed_records")->Value(), 2);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("usep.serve.last_seq")->Value(), 2.0);
  // The recovery instant landed in the (fresh) flight ring too.
  bool saw_recovery = false;
  for (const obs::TraceEvent& event : flight.SnapshotEvents()) {
    if (event.name == "serve/recovered") saw_recovery = true;
  }
  EXPECT_TRUE(saw_recovery);

  ASSERT_TRUE((*recovered)->Close().ok());
  std::remove(options.flight_dump_path.c_str());
  std::remove(options.journal_path.c_str());
}

TEST(ServeTelemetryTest, MetricsOutRepublishesAfterEveryMutationAtZeroCadence) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.metrics = &metrics;
  options.metrics_out = TempPath("telemetry_metrics.json");
  options.metrics_every_ms = 0.0;  // Publish after every processed mutation.
  std::remove(options.metrics_out.c_str());
  std::remove((options.metrics_out + ".prom").c_str());

  StatusOr<std::unique_ptr<StreamingService>> opened =
      StreamingService::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Feed(opened->get(), Post(10, {0, 100}, 2, {0, 0}));

  const std::string statsz = ReadFile(options.metrics_out);
  EXPECT_NE(statsz.find("\"kind\":\"statsz\""), std::string::npos);
  EXPECT_NE(statsz.find("usep.serve.mutations"), std::string::npos);
  // The SLO window gauges ride along with every publication.
  EXPECT_NE(statsz.find("usep.serve.slo.window.p99_ms"), std::string::npos);
  const std::string prom = ReadFile(options.metrics_out + ".prom");
  EXPECT_NE(prom.find("usep_serve_mutations 1"), std::string::npos);

  // Explicit publication refreshes the files with the latest counters.
  Feed(opened->get(), Join(1, 1000, {1, 1}, {{10, 0.9}}));
  (*opened)->PublishTelemetry();
  EXPECT_NE(ReadFile(options.metrics_out + ".prom")
                .find("usep_serve_mutations 2"),
            std::string::npos);
  EXPECT_EQ(metrics.GetCounter("usep.serve.metrics_dump_failures")->Value(),
            0);

  (*opened)->Abandon();
  std::remove(options.metrics_out.c_str());
  std::remove((options.metrics_out + ".prom").c_str());
}

TEST(ServeTelemetryTest, ExpositionFailuresAreCountedNotFatal) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.metrics = &metrics;
  options.metrics_out = "/nonexistent-dir/telemetry_metrics.json";
  options.metrics_every_ms = 0.0;

  StatusOr<std::unique_ptr<StreamingService>> opened =
      StreamingService::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  // The serving loop keeps committing; only the failure counter moves.
  const ProcessResult result = Feed(opened->get(), Post(10, {0, 100}, 2, {0, 0}));
  EXPECT_EQ(result.seq, 1u);
  EXPECT_GE(metrics.GetCounter("usep.serve.metrics_dump_failures")->Value(),
            1);
  (*opened)->Abandon();
}

}  // namespace
}  // namespace usep::serve
