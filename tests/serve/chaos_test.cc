#include "serve/chaos.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace usep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveFiles(const ServiceOptions& options) {
  if (!options.journal_path.empty()) {
    std::remove(options.journal_path.c_str());
  }
  if (!options.snapshot_path.empty()) {
    std::remove(options.snapshot_path.c_str());
    std::remove((options.snapshot_path + ".tmp").c_str());
  }
}

TEST(ChaosTest, CleanRunValidatesEveryMutation) {
  ChaosOptions options;
  options.trace.num_mutations = 120;
  options.trace.seed = 3;
  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->committed + result->rejected, 120);
  EXPECT_EQ(result->rejected, 0);  // Generated traces apply cleanly.
  EXPECT_EQ(result->validations, result->committed);
  EXPECT_EQ(result->faults, 0);
  EXPECT_FALSE(result->killed);
  EXPECT_NE(result->final_fingerprint, 0u);
}

TEST(ChaosTest, KillRestartRecoversBitIdentically) {
  ChaosOptions options;
  options.trace.num_mutations = 100;
  options.trace.seed = 5;
  options.service.journal_path = TempPath("chaos_kill.journal");
  options.service.snapshot_path = TempPath("chaos_kill.snap");
  options.service.snapshot_every = 16;
  options.kill_at = 50;
  RemoveFiles(options.service);
  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->killed);
  EXPECT_EQ(result->committed, 100);
  EXPECT_EQ(result->validations, result->committed);
  RemoveFiles(options.service);
}

TEST(ChaosTest, TornJournalWritesForceCleanRestarts) {
  ChaosOptions options;
  options.trace.num_mutations = 90;
  options.trace.seed = 11;
  options.service.journal_path = TempPath("chaos_torn.journal");
  options.schedule = {{20, "serve.journal.append", 0},
                      {60, "serve.journal.append", 0}};
  RemoveFiles(options.service);
  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->journal_crashed);
  // Every mutation still lands exactly once despite the two crashes.
  EXPECT_EQ(result->committed, 90);
  RemoveFiles(options.service);
}

TEST(ChaosTest, TierFaultsDegradeButNeverInvalidate) {
  ChaosOptions options;
  options.trace.num_mutations = 80;
  options.trace.seed = 23;
  options.schedule = {{10, "serve.tier.incremental", 0},
                      {30, "serve.tier.incremental", 0},
                      {30, "serve.tier.regional", 0},
                      {50, "serve.tier.incremental", 0},
                      {50, "serve.tier.regional", 0},
                      {50, "serve.tier.admission", 0}};
  obs::MetricsRegistry metrics;
  options.service.metrics = &metrics;
  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->faults, 6);
  // The ladder visibly descended: lower tiers ran at the scheduled points.
  EXPECT_GE(result->tier_counts[static_cast<int>(RepairTier::kRegional)], 1);
  EXPECT_GE(result->tier_counts[static_cast<int>(RepairTier::kAdmission)], 1);
  EXPECT_GE(metrics.GetCounter("usep.serve.faults")->Value(), 6);
  EXPECT_EQ(result->validations, result->committed);
}

TEST(ChaosTest, BatchedSubmissionExercisesAdmissionControl) {
  ChaosOptions options;
  options.trace.num_mutations = 120;
  options.trace.seed = 31;
  options.batch_size = 16;
  options.service.queue_capacity = 8;   // Forces submit rejections.
  options.service.shed_fraction = 0.25;  // And load shedding.
  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->submit_rejections, 0);
  EXPECT_GT(result->shed, 0);
  EXPECT_EQ(result->committed, 120);  // Shedding never drops mutations.
  EXPECT_EQ(result->validations, result->committed);
}

// The telemetry half of the chaos contract: when the harness is handed a
// flight recorder + dump path + registry, it asserts a valid dump exists
// after every kill/restart (written by the DYING incarnation — the file is
// deleted right before each simulated crash) and after every rung change,
// and that `usep.serve.recoveries` exactly matches the restarts it forced.
TEST(ChaosTest, KillsAndRungChangesLeaveValidFlightDumps) {
  ChaosOptions options;
  options.trace.num_mutations = 120;
  options.trace.seed = 7;
  options.service.journal_path = TempPath("chaos_flight.journal");
  options.kill_at = 40;
  options.schedule = {{70, "serve.journal.append", 0}};
  // Shedding via a tiny queue forces rung changes mid-run.
  options.batch_size = 8;
  options.service.queue_capacity = 8;
  options.service.shed_fraction = 0.5;

  obs::FlightRecorder flight;
  obs::MetricsRegistry metrics;
  options.service.metrics = &metrics;
  options.service.flight = &flight;
  options.service.flight_dump_path = TempPath("chaos_flight_dump.json");
  RemoveFiles(options.service);
  std::remove(options.service.flight_dump_path.c_str());

  const StatusOr<ChaosResult> result = RunChaos(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->killed);
  EXPECT_TRUE(result->journal_crashed);
  EXPECT_EQ(result->committed, 120);
  // One dump per forced crash (kill + torn write) plus one per rung change.
  EXPECT_GE(result->rung_changes, 1);
  EXPECT_GE(result->flight_dumps, 2 + result->rung_changes);
  // Two restarts replayed state; the counter cross-check ran inside
  // RunChaos, so here we only pin the expected total.
  EXPECT_EQ(result->recoveries, 2);
  EXPECT_EQ(metrics.GetCounter("usep.serve.recoveries")->Value(), 2);

  RemoveFiles(options.service);
  std::remove(options.service.flight_dump_path.c_str());
}

// The acceptance sweep: 50 seeded traces, each with scheduled tier faults, a
// torn journal write, AND a kill+restart.  Validity after every mutation,
// bit-identical recovery, and bounded SLO misses are all asserted inside
// RunChaos — a clean result IS the pass.
TEST(ChaosSweepTest, FiftySeededTracesSurviveScheduledFailures) {
  const std::string journal = TempPath("chaos_sweep.journal");
  const std::string snapshot = TempPath("chaos_sweep.snap");
  int total_faults = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosOptions options;
    options.trace.num_mutations = 60;
    options.trace.warmup_users = 8;
    options.trace.warmup_events = 4;
    options.trace.seed = seed;
    options.service.journal_path = journal;
    options.service.snapshot_path = snapshot;
    options.service.snapshot_every = 16;
    // A generous SLO: the ladder never legitimately misses it on these tiny
    // worlds, so slo_misses == 0 is meaningful, not flaky.
    options.service.ladder.slo_ms = 250.0;
    options.grace_floor_ms = 1000.0;
    options.kill_at = 10 + static_cast<int>(seed % 30);
    const int fault_at = 5 + static_cast<int>(seed % 40);
    options.schedule = {
        {fault_at, "serve.tier.incremental", 0},
        {static_cast<int>(seed % 50) + 4, "serve.journal.append", 0},
    };
    RemoveFiles(options.service);

    const StatusOr<ChaosResult> result = RunChaos(options);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status();
    EXPECT_EQ(result->committed + result->rejected, 60) << "seed " << seed;
    EXPECT_EQ(result->validations, result->committed) << "seed " << seed;
    EXPECT_TRUE(result->killed) << "seed " << seed;
    EXPECT_TRUE(result->journal_crashed) << "seed " << seed;
    EXPECT_EQ(result->slo_misses, 0) << "seed " << seed;
    total_faults += result->faults;
  }
  // The tier-fault schedule actually fired across the sweep.
  EXPECT_GT(total_faults, 0);
  std::remove(journal.c_str());
  std::remove(snapshot.c_str());
  std::remove((snapshot + ".tmp").c_str());
}

}  // namespace
}  // namespace usep::serve
