#include "serve/snapshot.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace usep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Snapshot MakeSnapshot() {
  Snapshot snapshot;
  snapshot.seq = 42;

  Mutation post;
  post.kind = MutationKind::kEventPost;
  post.key = 10;
  post.interval = TimeInterval{0, 100};
  post.capacity = 2;
  post.location = Point{0, 0};
  EXPECT_TRUE(snapshot.world.Apply(post).ok());
  Mutation join;
  join.kind = MutationKind::kUserJoin;
  join.key = 1;
  join.budget = 500;
  join.location = Point{1, 1};
  join.utilities = {{10, 0.75}};
  EXPECT_TRUE(snapshot.world.Apply(join).ok());
  EXPECT_TRUE(snapshot.plan.ApplyOp(PlanOp{true, 10, 1}).ok());
  return snapshot;
}

TEST(SnapshotTest, SerializeRoundTrips) {
  const Snapshot snapshot = MakeSnapshot();
  const StatusOr<Snapshot> parsed =
      Snapshot::Deserialize(snapshot.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->world.Fingerprint(), snapshot.world.Fingerprint());
  EXPECT_TRUE(parsed->plan == snapshot.plan);
}

TEST(SnapshotTest, CrcCatchesDamageAnywhere) {
  const std::string good = MakeSnapshot().Serialize();
  for (size_t pos = 0; pos < good.size(); pos += 7) {
    std::string damaged = good;
    damaged[pos] ^= 0x20;
    if (damaged == good) continue;
    EXPECT_FALSE(Snapshot::Deserialize(damaged).ok()) << "pos=" << pos;
  }
  EXPECT_FALSE(Snapshot::Deserialize("").ok());
  EXPECT_FALSE(Snapshot::Deserialize(good.substr(0, good.size() - 4)).ok());
}

TEST(SnapshotTest, RejectsPlanReferencingDeadEntities) {
  Snapshot snapshot = MakeSnapshot();
  ASSERT_TRUE(snapshot.plan.ApplyOp(PlanOp{true, 99, 1}).ok());  // no event 99
  const std::string text = snapshot.Serialize();
  EXPECT_FALSE(Snapshot::Deserialize(text).ok());
}

TEST(SnapshotFileTest, WriteReadRoundTrips) {
  const std::string path = TempPath("snapshot_roundtrip.snap");
  std::remove(path.c_str());
  const Snapshot snapshot = MakeSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  const StatusOr<Snapshot> parsed = ReadSnapshotFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->world.Fingerprint(), snapshot.world.Fingerprint());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsNotFound) {
  const StatusOr<Snapshot> parsed =
      ReadSnapshotFile(TempPath("no_such.snap"));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFileTest, CrashBeforeRenameKeepsPreviousSnapshot) {
  const std::string path = TempPath("snapshot_atomic.snap");
  std::remove(path.c_str());
  const Snapshot first = MakeSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(first, path).ok());

  Snapshot second = MakeSnapshot();
  second.seq = 99;
  {
    failpoint::ScopedArm arm("serve.snapshot.write");
    EXPECT_FALSE(WriteSnapshotFile(second, path).ok());
  }
  // The crash "between write and rename" must leave the old file intact.
  const StatusOr<Snapshot> parsed = ReadSnapshotFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seq, 42u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace usep::serve
