#include "serve/replanner.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/validation.h"
#include "gen/arrival_trace.h"
#include "obs/metrics.h"

namespace usep::serve {
namespace {

Mutation Join(uint64_t key, Cost budget, Point location,
              std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kUserJoin;
  m.key = key;
  m.budget = budget;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Post(uint64_t key, TimeInterval interval, int capacity,
              Point location, std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kEventPost;
  m.key = key;
  m.interval = interval;
  m.capacity = capacity;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Capacity(uint64_t key, int capacity) {
  Mutation m;
  m.kind = MutationKind::kCapacityChange;
  m.key = key;
  m.capacity = capacity;
  return m;
}

// Applies `m` to world + replanner the way the service does, asserting
// feasibility afterwards.
RepairOutcome Step(World* world, Replanner* replanner, PlanState* state,
                   const Mutation& m, bool shed = false) {
  EXPECT_TRUE(world->Apply(m).ok()) << m.ToLine();
  StatusOr<RepairOutcome> outcome = replanner->Repair(*world, m, state, shed);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  world->ClearDirty();
  if (replanner->planning() != nullptr) {
    const Status valid =
        CheckPlanningFeasible(*replanner->instance(), *replanner->planning());
    EXPECT_TRUE(valid.ok()) << valid;
  }
  return outcome.ok() ? *outcome : RepairOutcome{};
}

TEST(ReplannerTest, PlansArrivingUsersIncrementally) {
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(LadderOptions{}, nullptr, nullptr);

  Step(&world, &replanner, &state, Post(10, {0, 100}, 2, {0, 0}));
  EXPECT_EQ(replanner.planning(), nullptr);  // No users yet.

  const RepairOutcome joined = Step(&world, &replanner, &state,
                                    Join(1, 1000, {1, 1}, {{10, 0.9}}));
  EXPECT_EQ(joined.tier, RepairTier::kIncremental);
  EXPECT_TRUE(joined.instance_rebuilt);
  ASSERT_NE(replanner.planning(), nullptr);
  EXPECT_TRUE(state.IsAssigned(10, 1));
  EXPECT_DOUBLE_EQ(joined.omega, 0.9);
}

TEST(ReplannerTest, CapacityFastPathKeepsInstanceAndIndex) {
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(LadderOptions{}, nullptr, nullptr);
  Step(&world, &replanner, &state, Post(10, {0, 100}, 3, {0, 0}));
  Step(&world, &replanner, &state,
       Join(1, 1000, {1, 1}, {{10, 0.9}}));
  Step(&world, &replanner, &state,
       Join(2, 1000, {2, 2}, {{10, 0.8}}));
  const Instance* instance_before = replanner.instance();

  const RepairOutcome grown =
      Step(&world, &replanner, &state, Capacity(10, 5));
  EXPECT_TRUE(grown.index_reused);
  EXPECT_FALSE(grown.instance_rebuilt);
  EXPECT_EQ(grown.evictions, 0);
  // The SAME instance object, patched in place.
  EXPECT_EQ(replanner.instance(), instance_before);
  EXPECT_EQ(replanner.instance()->event(0).capacity, 5);
}

TEST(ReplannerTest, CapacityShrinkEvictsLowestUtilityFirst) {
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(LadderOptions{}, nullptr, nullptr);
  Step(&world, &replanner, &state, Post(10, {0, 100}, 3, {0, 0}));
  Step(&world, &replanner, &state, Join(1, 1000, {0, 1}, {{10, 0.9}}));
  Step(&world, &replanner, &state, Join(2, 1000, {0, 1}, {{10, 0.3}}));
  Step(&world, &replanner, &state, Join(3, 1000, {0, 1}, {{10, 0.7}}));
  ASSERT_EQ(state.num_assignments(), 3);

  const RepairOutcome shrunk =
      Step(&world, &replanner, &state, Capacity(10, 1));
  EXPECT_GE(shrunk.evictions, 2);
  EXPECT_TRUE(shrunk.index_reused);
  // The highest-mu attendee (user 1, mu 0.9) must be the survivor.
  EXPECT_TRUE(state.IsAssigned(10, 1));
  EXPECT_FALSE(state.IsAssigned(10, 2));
  EXPECT_FALSE(state.IsAssigned(10, 3));
}

TEST(ReplannerTest, UserLeaveFreesSeatsForOthers) {
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(LadderOptions{}, nullptr, nullptr);
  Step(&world, &replanner, &state, Post(10, {0, 100}, 1, {0, 0}));
  Step(&world, &replanner, &state, Join(1, 1000, {0, 1}, {{10, 0.9}}));
  Step(&world, &replanner, &state, Join(2, 1000, {0, 1}, {{10, 0.8}}));
  ASSERT_TRUE(state.IsAssigned(10, 1));
  ASSERT_FALSE(state.IsAssigned(10, 2));

  Mutation leave;
  leave.kind = MutationKind::kUserLeave;
  leave.key = 1;
  const RepairOutcome left = Step(&world, &replanner, &state, leave);
  EXPECT_GE(left.evictions, 1);
  // The freed seat goes to the remaining interested user.
  EXPECT_TRUE(state.IsAssigned(10, 2));
}

TEST(ReplannerTest, ShedSkipsTheLadderButStaysValid) {
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(LadderOptions{}, nullptr, nullptr);
  Step(&world, &replanner, &state, Post(10, {0, 100}, 2, {0, 0}));
  const RepairOutcome shed = Step(&world, &replanner, &state,
                                  Join(1, 1000, {1, 1}, {{10, 0.9}}),
                                  /*shed=*/true);
  EXPECT_EQ(shed.tier, RepairTier::kValidityOnly);
  // Under shedding the arriving user is NOT planned...
  EXPECT_FALSE(state.IsAssigned(10, 1));
  // ...but the next unshed mutation picks the seat up.
  const RepairOutcome next = Step(&world, &replanner, &state,
                                  Join(2, 1000, {2, 2}, {{10, 0.4}}));
  EXPECT_NE(next.tier, RepairTier::kValidityOnly);
  EXPECT_TRUE(state.IsAssigned(10, 1));
}

// The degradation ladder under injected faults: each armed tier descends to
// the next, every rung yields a valid planning, and the tier transitions
// show up in the metrics.
TEST(ReplannerLadderTest, FaultsDescendTheLadderTierByTier) {
  struct Case {
    std::vector<const char*> armed;
    RepairTier expected;
  };
  const Case cases[] = {
      {{}, RepairTier::kIncremental},
      {{"serve.tier.incremental"}, RepairTier::kRegional},
      {{"serve.tier.incremental", "serve.tier.regional"},
       RepairTier::kAdmission},
      {{"serve.tier.incremental", "serve.tier.regional",
        "serve.tier.admission"},
       RepairTier::kValidityOnly},
  };
  const LadderOptions ladder;  // max_retries = 1 -> 2 attempts per rung.

  for (const Case& c : cases) {
    failpoint::DisarmAll();
    obs::MetricsRegistry metrics;
    World world{WorldConfig{}};
    PlanState state;
    Replanner replanner(ladder, &metrics, nullptr);
    Step(&world, &replanner, &state, Post(10, {0, 100}, 2, {0, 0}));
    Step(&world, &replanner, &state, Join(1, 1000, {1, 1}, {{10, 0.9}}));

    // Arm with enough hits to exhaust the rung's retries.
    const std::string counter_name =
        std::string("usep.serve.tier.") + RepairTierName(c.expected);
    const int64_t tier_count_before =
        metrics.GetCounter(counter_name)->Value();
    for (const char* site : c.armed) failpoint::Arm(site);
    const RepairOutcome outcome = Step(&world, &replanner, &state,
                                       Join(2, 1000, {2, 2}, {{10, 0.8}}));
    failpoint::DisarmAll();

    EXPECT_EQ(outcome.tier, c.expected)
        << RepairTierName(outcome.tier) << " with " << c.armed.size()
        << " rungs armed";
    const int expected_faults =
        static_cast<int>(c.armed.size()) * (ladder.max_retries + 1);
    EXPECT_EQ(outcome.faults, expected_faults);
    EXPECT_EQ(outcome.retries, static_cast<int>(c.armed.size()) *
                                   ladder.max_retries);
    if (c.expected == RepairTier::kValidityOnly) {
      EXPECT_EQ(outcome.termination, Termination::kInjectedFault);
    }
    // The tier transition is visible in metrics.
    EXPECT_EQ(metrics.GetCounter(counter_name)->Value(),
              tier_count_before + 1)
        << counter_name;
    EXPECT_EQ(metrics.GetCounter("usep.serve.faults")->Value(),
              expected_faults);
  }
}

TEST(ReplannerLadderTest, MaxRetriesBoundsTheFaultLoop) {
  failpoint::DisarmAll();
  LadderOptions ladder;
  ladder.max_retries = 3;
  World world{WorldConfig{}};
  PlanState state;
  Replanner replanner(ladder, nullptr, nullptr);
  Step(&world, &replanner, &state, Post(10, {0, 100}, 2, {0, 0}));

  failpoint::Arm("serve.tier.incremental");
  const RepairOutcome outcome = Step(&world, &replanner, &state,
                                     Join(1, 1000, {1, 1}, {{10, 0.9}}));
  const int64_t hits = failpoint::HitCount("serve.tier.incremental");
  failpoint::DisarmAll();

  // 1 + max_retries attempts, each absorbing one fault, then descend.
  EXPECT_EQ(hits, 4);
  EXPECT_EQ(outcome.faults, 4);
  EXPECT_EQ(outcome.retries, 3);
  EXPECT_EQ(outcome.tier, RepairTier::kRegional);
  // The rung below still planned the arriving user.
  EXPECT_TRUE(state.IsAssigned(10, 1));
}

// The ladder's decisions must be bit-identical at any thread count — the
// LocalSearch parallel contract stretched across the streaming path.
TEST(ReplannerLadderTest, DeterministicAcrossThreadCounts) {
  const int thread_counts[] = {1, 2, 8};
  std::vector<std::string> fingerprints;
  for (const int threads : thread_counts) {
    gen::ArrivalTraceConfig config;
    config.num_mutations = 120;
    config.seed = 99;
    const StatusOr<gen::ArrivalTrace> trace = GenerateArrivalTrace(config);
    ASSERT_TRUE(trace.ok());

    LadderOptions ladder;
    ladder.local_search.parallel.num_threads = threads;
    World world(trace->world);
    PlanState state;
    Replanner replanner(ladder, nullptr, nullptr);
    std::string log;
    for (const Mutation& m : trace->mutations) {
      const RepairOutcome outcome = Step(&world, &replanner, &state, m);
      log += RepairTierName(outcome.tier);
      log += ' ';
    }
    fingerprints.push_back(log + StrFormat("%016llx", (unsigned long long)
                                               state.Fingerprint()));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

}  // namespace
}  // namespace usep::serve
