#include "serve/world.h"

#include <gtest/gtest.h>

#include "core/validation.h"

namespace usep::serve {
namespace {

Mutation Join(uint64_t key, Cost budget, Point location,
              std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kUserJoin;
  m.key = key;
  m.budget = budget;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Post(uint64_t key, TimeInterval interval, int capacity,
              Point location, std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kEventPost;
  m.key = key;
  m.interval = interval;
  m.capacity = capacity;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Leave(uint64_t key) {
  Mutation m;
  m.kind = MutationKind::kUserLeave;
  m.key = key;
  return m;
}

Mutation Cancel(uint64_t key) {
  Mutation m;
  m.kind = MutationKind::kEventCancel;
  m.key = key;
  return m;
}

Mutation Capacity(uint64_t key, int capacity) {
  Mutation m;
  m.kind = MutationKind::kCapacityChange;
  m.key = key;
  m.capacity = capacity;
  return m;
}

// A small but non-trivial world: two events, three users, sparse interests.
World MakeWorld() {
  World world{WorldConfig{}};
  EXPECT_TRUE(world.Apply(Post(10, {0, 100}, 2, {0, 0})).ok());
  EXPECT_TRUE(world.Apply(Post(20, {200, 300}, 1, {50, 50})).ok());
  EXPECT_TRUE(
      world.Apply(Join(1, 1000, {1, 1}, {{10, 0.9}, {20, 0.5}})).ok());
  EXPECT_TRUE(world.Apply(Join(2, 1000, {2, 2}, {{10, 0.4}})).ok());
  EXPECT_TRUE(world.Apply(Join(3, 1000, {3, 3}, {{20, 0.7}})).ok());
  return world;
}

TEST(WorldTest, AppliesAndTracksAliveSets) {
  const World world = MakeWorld();
  EXPECT_EQ(world.num_users(), 3);
  EXPECT_EQ(world.num_events(), 2);
  EXPECT_TRUE(world.HasUser(2));
  EXPECT_FALSE(world.HasUser(99));
  EXPECT_EQ(world.EventCapacity(10), 2);
  EXPECT_EQ(world.EventCapacity(99), 0);
  EXPECT_EQ(world.UserKeys(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(world.EventKeys(), (std::vector<uint64_t>{10, 20}));
  EXPECT_EQ(world.UserIdOf(2), 1);
  EXPECT_EQ(world.EventIdOf(20), 1);
  EXPECT_EQ(world.UserIdOf(99), -1);
}

TEST(WorldTest, RejectionsLeaveWorldUntouched) {
  World world = MakeWorld();
  const uint64_t before = world.Fingerprint();
  EXPECT_FALSE(world.Apply(Join(1, 10, {0, 0})).ok());     // duplicate user
  EXPECT_FALSE(world.Apply(Post(10, {0, 1}, 1, {0, 0})).ok());  // dup event
  EXPECT_FALSE(world.Apply(Leave(99)).ok());               // unknown user
  EXPECT_FALSE(world.Apply(Cancel(99)).ok());              // unknown event
  EXPECT_FALSE(world.Apply(Capacity(10, 0)).ok());         // capacity < 1
  EXPECT_FALSE(
      world.Apply(Join(5, -1, {0, 0})).ok());              // negative budget
  EXPECT_FALSE(
      world.Apply(Join(5, 10, {0, 0}, {{10, 1.5}})).ok()); // mu out of range
  EXPECT_FALSE(
      world.Apply(Join(5, 10, {0, 0}, {{77, 0.5}})).ok()); // unknown event ref
  EXPECT_EQ(world.Fingerprint(), before);
}

TEST(WorldTest, DirtyFlagsSeparateStructureFromCapacity) {
  World world = MakeWorld();
  world.ClearDirty();
  ASSERT_TRUE(world.Apply(Capacity(10, 5)).ok());
  EXPECT_FALSE(world.structure_dirty());
  EXPECT_TRUE(world.capacity_dirty());
  world.ClearDirty();
  ASSERT_TRUE(world.Apply(Leave(3)).ok());
  EXPECT_TRUE(world.structure_dirty());
}

TEST(WorldTest, LeaveAndCancelPruneUtilities) {
  World world = MakeWorld();
  ASSERT_TRUE(world.Apply(Leave(1)).ok());
  ASSERT_TRUE(world.Apply(Cancel(20)).ok());
  // Serialization mentions neither the dead user nor the dead event.
  const std::string text = world.Serialize();
  EXPECT_EQ(text.find(" 20 "), std::string::npos) << text;
  EXPECT_EQ(world.num_users(), 2);
  EXPECT_EQ(world.num_events(), 1);
}

TEST(WorldTest, SerializeRoundTripsBitIdentically) {
  const World world = MakeWorld();
  const StatusOr<World> parsed = World::Deserialize(world.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Serialize(), world.Serialize());
  EXPECT_EQ(parsed->Fingerprint(), world.Fingerprint());
}

TEST(WorldTest, FingerprintIsOrderIndependent) {
  // Two mutation orders reaching the same alive set must agree bit-for-bit
  // (the property that makes recovery comparisons meaningful).
  World a{WorldConfig{}};
  ASSERT_TRUE(a.Apply(Post(10, {0, 100}, 2, {0, 0})).ok());
  ASSERT_TRUE(a.Apply(Join(1, 500, {1, 1}, {{10, 0.9}})).ok());
  ASSERT_TRUE(a.Apply(Join(2, 600, {2, 2})).ok());
  ASSERT_TRUE(a.Apply(Leave(2)).ok());

  World b{WorldConfig{}};
  ASSERT_TRUE(b.Apply(Post(10, {0, 100}, 2, {0, 0})).ok());
  ASSERT_TRUE(b.Apply(Join(1, 500, {1, 1}, {{10, 0.9}})).ok());

  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(WorldTest, MaterializeBuildsConsistentInstance) {
  const World world = MakeWorld();
  const StatusOr<Instance> instance = world.Materialize();
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_users(), 3);
  EXPECT_EQ(instance->num_events(), 2);
  // Dense ids follow ascending key order: user key 1 -> id 0, event 10 -> 0.
  EXPECT_DOUBLE_EQ(instance->utility(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(instance->utility(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(instance->utility(0, 1), 0.4);
  EXPECT_EQ(instance->event(0).capacity, 2);
}

TEST(WorldTest, MaterializeFailsOnEmptySide) {
  World world{WorldConfig{}};
  EXPECT_FALSE(world.Materialize().ok());
  ASSERT_TRUE(world.Apply(Join(1, 10, {0, 0})).ok());
  EXPECT_FALSE(world.Materialize().ok());  // users but no events
}

TEST(WorldTest, DeserializeRejectsDamage) {
  const std::string good = MakeWorld().Serialize();
  EXPECT_FALSE(World::Deserialize("").ok());
  EXPECT_FALSE(World::Deserialize("garbage\n").ok());
  // Chop the trailing "end" terminator off.
  EXPECT_FALSE(World::Deserialize(good.substr(0, good.size() / 2)).ok());
}

}  // namespace
}  // namespace usep::serve
