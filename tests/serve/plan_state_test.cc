#include "serve/plan_state.h"

#include <gtest/gtest.h>

#include "core/validation.h"

namespace usep::serve {
namespace {

Status Apply(PlanState* state, bool assign, uint64_t event_key,
             uint64_t user_key) {
  return state->ApplyOp(PlanOp{assign, event_key, user_key});
}

TEST(PlanStateTest, TracksAssignmentsByKey) {
  PlanState state;
  ASSERT_TRUE(Apply(&state, true, 10, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 20, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 10, 2).ok());
  EXPECT_EQ(state.num_assignments(), 3);
  EXPECT_TRUE(state.IsAssigned(10, 1));
  EXPECT_FALSE(state.IsAssigned(20, 2));
  EXPECT_EQ(state.Assigned(1), (std::set<uint64_t>{10, 20}));
  EXPECT_EQ(state.UserKeys(), (std::vector<uint64_t>{1, 2}));

  ASSERT_TRUE(Apply(&state, false, 20, 1).ok());
  EXPECT_EQ(state.num_assignments(), 2);
  EXPECT_FALSE(state.IsAssigned(20, 1));
}

TEST(PlanStateTest, ReplayInconsistencyIsAnError) {
  PlanState state;
  ASSERT_TRUE(Apply(&state, true, 10, 1).ok());
  EXPECT_FALSE(Apply(&state, true, 10, 1).ok());   // double assign
  EXPECT_FALSE(Apply(&state, false, 20, 1).ok());  // absent remove
  EXPECT_FALSE(Apply(&state, false, 10, 9).ok());  // absent user
  EXPECT_EQ(state.num_assignments(), 1);           // errors changed nothing
}

TEST(PlanStateTest, RemoveUserAndEventReturnJournalableOps) {
  PlanState state;
  ASSERT_TRUE(Apply(&state, true, 10, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 20, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 10, 2).ok());

  const std::vector<PlanOp> user_ops = state.RemoveUser(1);
  ASSERT_EQ(user_ops.size(), 2u);
  EXPECT_TRUE((user_ops[0] == PlanOp{false, 10, 1}));
  EXPECT_TRUE((user_ops[1] == PlanOp{false, 20, 1}));

  const std::vector<PlanOp> event_ops = state.RemoveEvent(10);
  ASSERT_EQ(event_ops.size(), 1u);
  EXPECT_TRUE((event_ops[0] == PlanOp{false, 10, 2}));
  EXPECT_TRUE(state.empty());
}

TEST(PlanStateTest, DiffIsExactAndReplayable) {
  PlanState before;
  ASSERT_TRUE(Apply(&before, true, 10, 1).ok());
  ASSERT_TRUE(Apply(&before, true, 20, 2).ok());

  PlanState after;
  ASSERT_TRUE(Apply(&after, true, 20, 2).ok());
  ASSERT_TRUE(Apply(&after, true, 30, 2).ok());
  ASSERT_TRUE(Apply(&after, true, 10, 3).ok());

  PlanState replayed = before;
  for (const PlanOp& op : PlanState::Diff(before, after)) {
    ASSERT_TRUE(replayed.ApplyOp(op).ok());
  }
  EXPECT_TRUE(replayed == after);
  EXPECT_TRUE(PlanState::Diff(after, after).empty());
}

TEST(PlanStateTest, SerializeRoundTripsAndFingerprints) {
  PlanState state;
  ASSERT_TRUE(Apply(&state, true, 10, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 20, 1).ok());
  ASSERT_TRUE(Apply(&state, true, 10, 5).ok());

  const StatusOr<PlanState> parsed = PlanState::Deserialize(state.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == state);
  EXPECT_EQ(parsed->Fingerprint(), state.Fingerprint());
  EXPECT_NE(state.Fingerprint(), PlanState().Fingerprint());

  EXPECT_FALSE(PlanState::Deserialize("a 1 :").ok());
  EXPECT_FALSE(PlanState::Deserialize("a 1 : 10\n").ok());  // missing end
}

TEST(PlanStateTest, PlanningConversionsRoundTrip) {
  World world{WorldConfig{}};
  Mutation post1;
  post1.kind = MutationKind::kEventPost;
  post1.key = 10;
  post1.interval = TimeInterval{0, 100};
  post1.capacity = 2;
  post1.location = Point{0, 0};
  ASSERT_TRUE(world.Apply(post1).ok());
  Mutation post2 = post1;
  post2.key = 20;
  post2.interval = TimeInterval{200, 300};
  post2.location = Point{5, 5};
  ASSERT_TRUE(world.Apply(post2).ok());
  Mutation join;
  join.kind = MutationKind::kUserJoin;
  join.key = 1;
  join.budget = 1000;
  join.location = Point{1, 1};
  join.utilities = {{10, 0.9}, {20, 0.5}};
  ASSERT_TRUE(world.Apply(join).ok());

  const StatusOr<Instance> instance = world.Materialize();
  ASSERT_TRUE(instance.ok()) << instance.status();
  Planning planning(*instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(1, 0));

  const PlanState state = PlanState::FromPlanning(world, planning);
  EXPECT_EQ(state.Assigned(1), (std::set<uint64_t>{10, 20}));

  const StatusOr<Planning> rebuilt = state.ToPlanning(world, *instance);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(CheckPlanningFeasible(*instance, *rebuilt).ok());
  EXPECT_DOUBLE_EQ(rebuilt->total_utility(), planning.total_utility());
  EXPECT_TRUE(PlanState::FromPlanning(world, *rebuilt) == state);
}

TEST(PlanStateTest, ToPlanningRejectsInfeasibleState) {
  World world{WorldConfig{}};
  Mutation post;
  post.kind = MutationKind::kEventPost;
  post.key = 10;
  post.interval = TimeInterval{0, 100};
  post.capacity = 1;
  post.location = Point{900, 900};
  ASSERT_TRUE(world.Apply(post).ok());
  Mutation join;
  join.kind = MutationKind::kUserJoin;
  join.key = 1;
  join.budget = 1;  // Cannot afford the trip.
  join.location = Point{0, 0};
  join.utilities = {{10, 0.9}};
  ASSERT_TRUE(world.Apply(join).ok());
  const StatusOr<Instance> instance = world.Materialize();
  ASSERT_TRUE(instance.ok());

  PlanState state;
  ASSERT_TRUE(Apply(&state, true, 10, 1).ok());
  const StatusOr<Planning> rebuilt = state.ToPlanning(world, *instance);
  EXPECT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace usep::serve
