#include "serve/service.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/validation.h"
#include "gen/arrival_trace.h"
#include "obs/metrics.h"

namespace usep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveFiles(const ServiceOptions& options) {
  if (!options.journal_path.empty()) {
    std::remove(options.journal_path.c_str());
  }
  if (!options.snapshot_path.empty()) {
    std::remove(options.snapshot_path.c_str());
    std::remove((options.snapshot_path + ".tmp").c_str());
  }
}

Mutation Join(uint64_t key, Cost budget, Point location,
              std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kUserJoin;
  m.key = key;
  m.budget = budget;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

Mutation Post(uint64_t key, TimeInterval interval, int capacity,
              Point location, std::vector<MutationUtility> utilities = {}) {
  Mutation m;
  m.kind = MutationKind::kEventPost;
  m.key = key;
  m.interval = interval;
  m.capacity = capacity;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

// Submit + ProcessNext in one step, asserting infrastructure success.
ProcessResult Feed(StreamingService* service, const Mutation& m) {
  EXPECT_TRUE(service->Submit(m).ok());
  StatusOr<ProcessResult> result = service->ProcessNext();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : ProcessResult{};
}

TEST(ServiceTest, CommitsMutationsAndAssignsSequenceNumbers) {
  ServiceOptions options;  // Ephemeral: no journal.
  StatusOr<std::unique_ptr<StreamingService>> service =
      StreamingService::Open(options);
  ASSERT_TRUE(service.ok()) << service.status();

  const ProcessResult first =
      Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));
  EXPECT_EQ(first.seq, 1u);
  const ProcessResult second =
      Feed(service->get(), Join(1, 1000, {1, 1}, {{10, 0.9}}));
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ((*service)->last_seq(), 2u);
  EXPECT_TRUE((*service)->plan_state().IsAssigned(10, 1));
  ASSERT_NE((*service)->planning(), nullptr);
  EXPECT_TRUE(CheckPlanningFeasible(*(*service)->instance(),
                                    *(*service)->planning())
                  .ok());
}

TEST(ServiceTest, BadStreamRecordsAreRejectedNotFatal) {
  StatusOr<std::unique_ptr<StreamingService>> service =
      StreamingService::Open(ServiceOptions{});
  ASSERT_TRUE(service.ok());
  Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));

  Mutation dup = Post(10, {0, 50}, 1, {5, 5});
  const ProcessResult rejected = Feed(service->get(), dup);
  EXPECT_EQ(rejected.seq, 0u);
  EXPECT_FALSE(rejected.apply_status.ok());
  EXPECT_EQ((*service)->last_seq(), 1u);  // Nothing committed.
}

TEST(ServiceTest, QueueCapacityRejectsSubmitsAndDepthSheds) {
  ServiceOptions options;
  options.queue_capacity = 4;
  options.shed_fraction = 0.5;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  StatusOr<std::unique_ptr<StreamingService>> opened =
      StreamingService::Open(options);
  ASSERT_TRUE(opened.ok());
  StreamingService* service = opened->get();

  ASSERT_TRUE(service->Submit(Post(10, {0, 100}, 8, {0, 0})).ok());
  for (uint64_t key = 1; key <= 3; ++key) {
    ASSERT_TRUE(
        service->Submit(Join(key, 1000, {1, 1}, {{10, 0.5}})).ok());
  }
  // Queue full: backpressure.
  const Status overflow = service->Submit(Join(9, 1000, {1, 1}));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(metrics.GetCounter("usep.serve.submit.rejected")->Value(), 1);

  // Depth 4 > 0.5 * 4 after popping -> the first pops run shed.
  StatusOr<ProcessResult> first = service->ProcessNext();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->shed);
  StatusOr<std::vector<ProcessResult>> rest = service->Drain();
  ASSERT_TRUE(rest.ok());
  EXPECT_FALSE(service->HasPending());
  EXPECT_FALSE(rest->back().shed);  // Depth fell below the shed line.
  EXPECT_GE(metrics.GetCounter("usep.serve.shed")->Value(), 1);
}

TEST(ServiceTest, RecoversFromJournalAfterAbandon) {
  ServiceOptions options;
  options.journal_path = TempPath("service_recover.journal");
  RemoveFiles(options);

  uint64_t live_fingerprint = 0;
  {
    StatusOr<std::unique_ptr<StreamingService>> service =
        StreamingService::Open(options);
    ASSERT_TRUE(service.ok()) << service.status();
    Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));
    Feed(service->get(), Post(20, {200, 300}, 1, {3, 3}));
    Feed(service->get(),
         Join(1, 1000, {1, 1}, {{10, 0.9}, {20, 0.5}}));
    Feed(service->get(), Join(2, 1000, {2, 2}, {{10, 0.4}}));
    live_fingerprint = (*service)->Fingerprint();
    (*service)->Abandon();  // Crash: no Close, no snapshot.
  }

  StatusOr<std::unique_ptr<StreamingService>> recovered =
      StreamingService::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->recovery().replayed_records, 4u);
  EXPECT_EQ((*recovered)->last_seq(), 4u);
  EXPECT_EQ((*recovered)->Fingerprint(), live_fingerprint);
  // Recovery rebuilt a live, feasible planning, and the service keeps going.
  const ProcessResult next =
      Feed(recovered->get(), Join(3, 1000, {4, 4}, {{20, 0.7}}));
  EXPECT_EQ(next.seq, 5u);
  RemoveFiles(options);
}

TEST(ServiceTest, SnapshotBoundsReplayAndSurvivesCorruptSnapshot) {
  ServiceOptions options;
  options.journal_path = TempPath("service_snap.journal");
  options.snapshot_path = TempPath("service_snap.snap");
  options.snapshot_every = 2;
  RemoveFiles(options);

  uint64_t live_fingerprint = 0;
  {
    StatusOr<std::unique_ptr<StreamingService>> service =
        StreamingService::Open(options);
    ASSERT_TRUE(service.ok());
    Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));
    Feed(service->get(), Join(1, 1000, {1, 1}, {{10, 0.9}}));
    Feed(service->get(), Join(2, 1000, {2, 2}, {{10, 0.4}}));
    live_fingerprint = (*service)->Fingerprint();
    (*service)->Abandon();
  }
  {
    // The snapshot at seq 2 bounds the replay to the journal suffix.
    StatusOr<std::unique_ptr<StreamingService>> recovered =
        StreamingService::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE((*recovered)->recovery().snapshot_loaded);
    EXPECT_EQ((*recovered)->recovery().replayed_records, 1u);
    EXPECT_EQ((*recovered)->Fingerprint(), live_fingerprint);
    (*recovered)->Abandon();
  }
  {
    // Corrupt the snapshot: recovery falls back to the full journal.
    std::FILE* file = std::fopen(options.snapshot_path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    std::fputs("garbage\n", file);
    std::fclose(file);
    StatusOr<std::unique_ptr<StreamingService>> recovered =
        StreamingService::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_FALSE((*recovered)->recovery().snapshot_loaded);
    EXPECT_FALSE((*recovered)->recovery().snapshot_note.empty());
    EXPECT_EQ((*recovered)->recovery().replayed_records, 3u);
    EXPECT_EQ((*recovered)->Fingerprint(), live_fingerprint);
  }
  RemoveFiles(options);
}

TEST(ServiceTest, TornJournalAppendBreaksServiceAndRecoversOnRestart) {
  ServiceOptions options;
  options.journal_path = TempPath("service_torn.journal");
  RemoveFiles(options);

  StatusOr<std::unique_ptr<StreamingService>> service =
      StreamingService::Open(options);
  ASSERT_TRUE(service.ok());
  Feed(service->get(), Post(10, {0, 100}, 2, {0, 0}));
  const uint64_t committed_fingerprint = (*service)->Fingerprint();

  // The next append tears mid-line.
  ASSERT_TRUE(
      (*service)->Submit(Join(1, 1000, {1, 1}, {{10, 0.9}})).ok());
  {
    failpoint::ScopedArm arm("serve.journal.append");
    const StatusOr<ProcessResult> result = (*service)->ProcessNext();
    EXPECT_FALSE(result.ok());
  }
  EXPECT_TRUE((*service)->journal_broken());
  // In-memory state ran ahead of the journal; the service refuses to go on.
  ASSERT_TRUE((*service)->Submit(Join(2, 1000, {2, 2})).ok());
  EXPECT_FALSE((*service)->ProcessNext().ok());
  (*service)->Abandon();

  // Restart: the torn tail is dropped + truncated, state returns to the
  // last acknowledged mutation, and the journal accepts appends again.
  StatusOr<std::unique_ptr<StreamingService>> recovered =
      StreamingService::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE((*recovered)->recovery().truncated_tail);
  EXPECT_EQ((*recovered)->last_seq(), 1u);
  EXPECT_EQ((*recovered)->Fingerprint(), committed_fingerprint);
  const ProcessResult retried =
      Feed(recovered->get(), Join(1, 1000, {1, 1}, {{10, 0.9}}));
  EXPECT_EQ(retried.seq, 2u);
  ASSERT_TRUE((*recovered)->Close().ok());

  // The re-appended record reads back framed and contiguous.
  const StatusOr<JournalReplay> replay = ReadJournal(options.journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 2u);
  RemoveFiles(options);
}

TEST(ServiceTest, JournaledDrainMatchesLiveStateOnLongTrace) {
  // The live-vs-recovered contract over a full generated trace: replay the
  // journal cold (RecoverState, no service) and compare fingerprints.
  gen::ArrivalTraceConfig config;
  config.num_mutations = 200;
  config.seed = 17;
  const StatusOr<gen::ArrivalTrace> trace = GenerateArrivalTrace(config);
  ASSERT_TRUE(trace.ok());

  ServiceOptions options;
  options.world = trace->world;
  options.journal_path = TempPath("service_long.journal");
  RemoveFiles(options);

  StatusOr<std::unique_ptr<StreamingService>> service =
      StreamingService::Open(options);
  ASSERT_TRUE(service.ok());
  for (const Mutation& m : trace->mutations) {
    Feed(service->get(), m);
  }
  const uint64_t live_world = (*service)->world().Fingerprint();
  const uint64_t live_plan = (*service)->plan_state().Fingerprint();
  (*service)->Abandon();

  const StatusOr<RecoveredState> replayed =
      RecoverState(trace->world, options.journal_path, "");
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->world.Fingerprint(), live_world);
  EXPECT_EQ(replayed->state.Fingerprint(), live_plan);
  EXPECT_EQ(replayed->info.replayed_records, trace->mutations.size());
  RemoveFiles(options);
}

}  // namespace
}  // namespace usep::serve
