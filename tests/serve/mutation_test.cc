#include "serve/mutation.h"

#include <gtest/gtest.h>

namespace usep::serve {
namespace {

Mutation MakeJoin() {
  Mutation m;
  m.kind = MutationKind::kUserJoin;
  m.key = 7;
  m.budget = 120;
  m.location = Point{3, 4};
  m.utilities = {{1, 0.5}, {2, 0.25}};
  return m;
}

Mutation MakePost() {
  Mutation m;
  m.kind = MutationKind::kEventPost;
  m.key = 3;
  m.interval = TimeInterval{540, 660};
  m.capacity = 10;
  m.location = Point{5, 9};
  m.utilities = {{7, 0.8}};
  return m;
}

TEST(MutationTest, KindNamesAreStable) {
  EXPECT_STREQ(MutationKindName(MutationKind::kUserJoin), "user_join");
  EXPECT_STREQ(MutationKindName(MutationKind::kUserLeave), "user_leave");
  EXPECT_STREQ(MutationKindName(MutationKind::kEventPost), "event_post");
  EXPECT_STREQ(MutationKindName(MutationKind::kEventCancel), "event_cancel");
  EXPECT_STREQ(MutationKindName(MutationKind::kCapacityChange),
               "capacity_change");
}

TEST(MutationTest, RoundTripsEveryKind) {
  std::vector<Mutation> cases;
  cases.push_back(MakeJoin());
  cases.push_back(MakePost());
  Mutation leave;
  leave.kind = MutationKind::kUserLeave;
  leave.key = 42;
  cases.push_back(leave);
  Mutation cancel;
  cancel.kind = MutationKind::kEventCancel;
  cancel.key = 9;
  cases.push_back(cancel);
  Mutation capacity;
  capacity.kind = MutationKind::kCapacityChange;
  capacity.key = 3;
  capacity.capacity = 6;
  cases.push_back(capacity);

  for (const Mutation& original : cases) {
    const StatusOr<Mutation> parsed = Mutation::FromLine(original.ToLine());
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " <- " << original.ToLine();
    EXPECT_TRUE(*parsed == original) << original.ToLine();
  }
}

TEST(MutationTest, RoundTripsAwkwardDoubles) {
  Mutation m = MakeJoin();
  m.utilities = {{1, 1.0 / 3.0}, {2, 1e-17}, {3, 0.9999999999999999}};
  const StatusOr<Mutation> parsed = Mutation::FromLine(m.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == m);
}

TEST(MutationTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "frobnicate 1",
      "user_join",                    // missing fields
      "user_join 7 120 3",            // truncated
      "user_join 7 120 3 4 1 1",      // utility without mu
      "user_join -7 120 3 4 0",       // negative key
      "capacity_change 3",            // missing capacity
      "capacity_change 3 6 extra",    // trailing tokens
      "event_post 3 660 540 10 5 9 0",  // start >= end
  };
  for (const char* line : bad) {
    EXPECT_FALSE(Mutation::FromLine(line).ok()) << "'" << line << "'";
  }
}

TEST(MutationTest, TokenFormComposesWithSurroundingFields) {
  // The journal embeds mutation tokens mid-line; FromTokens must consume
  // exactly its own tokens and leave the cursor on the next field.
  std::vector<std::string> tokens = {"prefix"};
  MakePost().AppendTokens(&tokens);
  tokens.push_back("suffix");

  size_t cursor = 1;
  const StatusOr<Mutation> parsed = Mutation::FromTokens(tokens, &cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == MakePost());
  ASSERT_EQ(cursor, tokens.size() - 1);
  EXPECT_EQ(tokens[cursor], "suffix");
}

}  // namespace
}  // namespace usep::serve
