#include "serve/journal.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"

namespace usep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  return content;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file),
            content.size());
  std::fclose(file);
}

JournalRecord MakeRecord(uint64_t seq) {
  JournalRecord record;
  record.seq = seq;
  record.mutation.kind = MutationKind::kUserJoin;
  record.mutation.key = seq * 10;
  record.mutation.budget = 100;
  record.mutation.location = Point{1, 2};
  record.mutation.utilities = {{3, 0.5}};
  record.ops = {{true, 3, seq * 10}};
  return record;
}

TEST(JournalRecordTest, LineRoundTrips) {
  const JournalRecord record = MakeRecord(7);
  const StatusOr<JournalRecord> parsed =
      JournalRecord::FromLine(record.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == record);
}

TEST(JournalRecordTest, CrcCatchesSingleByteDamage) {
  std::string line = MakeRecord(3).ToLine();
  // Flip one byte in the body; the frame must reject it.
  line[line.size() / 2] ^= 0x01;
  EXPECT_FALSE(JournalRecord::FromLine(line).ok());
}

TEST(JournalTest, AppendReadRoundTrips) {
  const std::string path = TempPath("journal_roundtrip.log");
  std::remove(path.c_str());
  {
    StatusOr<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      ASSERT_TRUE(writer->Append(MakeRecord(seq)).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  const StatusOr<JournalReplay> replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_TRUE(replay->records[seq - 1] == MakeRecord(seq));
  }
  EXPECT_EQ(replay->valid_prefix_bytes, ReadFileOrDie(path).size());
  std::remove(path.c_str());
}

TEST(JournalTest, MinSeqSkipsSnapshottedPrefix) {
  const std::string path = TempPath("journal_minseq.log");
  std::remove(path.c_str());
  StatusOr<JournalWriter> writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    ASSERT_TRUE(writer->Append(MakeRecord(seq)).ok());
  }
  const StatusOr<JournalReplay> replay = ReadJournal(path, /*min_seq=*/4);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].seq, 5u);
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsEmptyJournal) {
  const StatusOr<JournalReplay> replay =
      ReadJournal(TempPath("does_not_exist.log"));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->truncated_tail);
}

TEST(JournalTest, TornAppendFailpointLeavesRecoverableTail) {
  const std::string path = TempPath("journal_torn.log");
  std::remove(path.c_str());
  StatusOr<JournalWriter> writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeRecord(1)).ok());
  ASSERT_TRUE(writer->Append(MakeRecord(2)).ok());
  const uint64_t committed = ReadFileOrDie(path).size();
  {
    failpoint::ScopedArm arm("serve.journal.append");
    EXPECT_FALSE(writer->Append(MakeRecord(3)).ok());
  }
  // The torn half-line is on disk; recovery keeps the committed prefix.
  const StatusOr<JournalReplay> replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(replay->valid_prefix_bytes, committed);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records.back().seq, 2u);
  std::remove(path.c_str());
}

TEST(JournalTest, MidFileCorruptionIsAHardError) {
  const std::string path = TempPath("journal_midfile.log");
  const std::string content = MakeRecord(1).ToLine() + "\n" +
                              "00000000 not a record\n" +
                              MakeRecord(2).ToLine() + "\n";
  WriteFileOrDie(path, content);
  const StatusOr<JournalReplay> replay = ReadJournal(path);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(JournalTest, SequenceGapMidFileIsAHardError) {
  const std::string path = TempPath("journal_gap.log");
  WriteFileOrDie(path, MakeRecord(1).ToLine() + "\n" +
                           MakeRecord(3).ToLine() + "\n" +
                           MakeRecord(4).ToLine() + "\n");
  EXPECT_FALSE(ReadJournal(path).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, SequenceGapAtTailIsATornTail) {
  // A gap on the LAST line is indistinguishable from a torn write of an
  // earlier record: drop it, keep the prefix.
  const std::string path = TempPath("journal_gap_tail.log");
  WriteFileOrDie(path,
                 MakeRecord(1).ToLine() + "\n" + MakeRecord(3).ToLine() + "\n");
  const StatusOr<JournalReplay> replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFinalNewlineIsATornTail) {
  const std::string path = TempPath("journal_nonewline.log");
  WriteFileOrDie(path,
                 MakeRecord(1).ToLine() + "\n" + MakeRecord(2).ToLine());
  const StatusOr<JournalReplay> replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  std::remove(path.c_str());
}

// The recovery fuzz: truncate a valid journal at EVERY byte boundary.  Each
// prefix must either read cleanly or report a torn tail — never crash, never
// return records beyond the cut, never mis-frame.
TEST(JournalFuzzTest, EveryTruncationRecoversOrDiagnoses) {
  const std::string path = TempPath("journal_fuzz_trunc.log");
  std::string full;
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    full += MakeRecord(seq).ToLine() + "\n";
  }
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFileOrDie(path, full.substr(0, cut));
    const StatusOr<JournalReplay> replay = ReadJournal(path);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": " << replay.status();
    // Whatever came back is a contiguous prefix of what was written.
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_TRUE(replay->records[i] == MakeRecord(i + 1)) << "cut=" << cut;
    }
    EXPECT_LE(replay->valid_prefix_bytes, cut);
    // Mid-line cuts must be flagged; whole-line cuts must not.
    const bool clean_cut = cut == 0 || full[cut - 1] == '\n';
    EXPECT_EQ(replay->truncated_tail, !clean_cut) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

// Random single-byte corruption: anywhere but the last line must be a hard
// IoError; on the last line it must be a clean torn-tail recovery.
TEST(JournalFuzzTest, RandomCorruptionNeverPanicsOrLies) {
  const std::string path = TempPath("journal_fuzz_corrupt.log");
  std::string full;
  std::vector<size_t> line_starts = {0};
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    full += MakeRecord(seq).ToLine() + "\n";
    line_starts.push_back(full.size());
  }
  const size_t last_line_start = line_starts[line_starts.size() - 2];

  Rng rng(20150531);
  for (int trial = 0; trial < 500; ++trial) {
    std::string damaged = full;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, (int64_t)full.size() - 1));
    char flip = static_cast<char>(rng.UniformInt(1, 255));
    damaged[pos] = static_cast<char>(damaged[pos] ^ flip);
    if (damaged == full) continue;
    WriteFileOrDie(path, damaged);

    const StatusOr<JournalReplay> replay = ReadJournal(path);
    if (!replay.ok()) {
      // Hard corruption: legitimate before the final line, or when the flip
      // INTRODUCED a newline that split the last line (its first half then
      // sits mid-file) — and always a diagnostic, never silence.
      EXPECT_TRUE(pos < last_line_start || damaged[pos] == '\n')
          << "trial=" << trial << " pos=" << pos;
      EXPECT_FALSE(replay.status().message().empty());
      continue;
    }
    if (replay->truncated_tail) {
      // Tail damage: every record before the tail must be intact.
      for (size_t i = 0; i < replay->records.size(); ++i) {
        EXPECT_TRUE(replay->records[i] == MakeRecord(i + 1));
      }
      continue;
    }
    // Fully clean reads require the damage to have been CRC-invisible,
    // which a single bit flip inside a framed line never is — unless the
    // flip landed in a newline and merged/split lines in a way that still
    // framed (not possible: merged lines fail CRC).  So: must not happen.
    ADD_FAILURE() << "corruption at " << pos << " read back clean";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usep::serve
