#include "serve/slo_tracker.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/replanner.h"

namespace usep::serve {
namespace {

SloTrackerOptions SmallWindow() {
  SloTrackerOptions options;
  options.window_seconds = 60.0;
  options.num_buckets = 12;  // 5 s buckets, the serving default.
  return options;
}

// Record() with only the fields under test varying.
bool Commit(SloTracker& tracker, double ms, RepairTier tier,
            bool shed = false, bool fault = false, bool deadline = false,
            SloTracker::RungChange* change = nullptr) {
  return tracker.Record(ms, tier, shed, fault, deadline, /*queue_depth=*/0,
                        change);
}

TEST(SloTrackerTest, FirstRecordInitializesTheRungSilently) {
  SloTracker tracker(SmallWindow(), nullptr);
  SloTracker::RungChange change;
  EXPECT_FALSE(Commit(tracker, 1.0, RepairTier::kRegional, /*shed=*/false,
                      /*fault=*/true, /*deadline=*/true, &change));
  EXPECT_EQ(tracker.current_rung(), RepairTier::kRegional);
  EXPECT_EQ(tracker.rung_changes(), 0);
}

TEST(SloTrackerTest, ClassifiesRungChangeReasonsByPriority) {
  SloTracker tracker(SmallWindow(), nullptr);
  Commit(tracker, 1.0, RepairTier::kIncremental);

  SloTracker::RungChange change;
  // Descending: fault wins over everything else.
  ASSERT_TRUE(Commit(tracker, 1.0, RepairTier::kRegional, /*shed=*/true,
                     /*fault=*/true, /*deadline=*/true, &change));
  EXPECT_STREQ(change.why, "fault");
  EXPECT_EQ(change.from, RepairTier::kIncremental);
  EXPECT_EQ(change.to, RepairTier::kRegional);

  // Then shed...
  ASSERT_TRUE(Commit(tracker, 1.0, RepairTier::kAdmission, /*shed=*/true,
                     /*fault=*/false, /*deadline=*/true, &change));
  EXPECT_STREQ(change.why, "shed");

  // ...then deadline...
  ASSERT_TRUE(Commit(tracker, 1.0, RepairTier::kValidityOnly, /*shed=*/false,
                     /*fault=*/false, /*deadline=*/true, &change));
  EXPECT_STREQ(change.why, "deadline");

  // ...and plain load when no cause is flagged.  Any climb is "recovered"
  // regardless of flags.
  ASSERT_TRUE(Commit(tracker, 1.0, RepairTier::kIncremental, /*shed=*/false,
                     /*fault=*/true, /*deadline=*/true, &change));
  EXPECT_STREQ(change.why, "recovered");
  ASSERT_TRUE(Commit(tracker, 1.0, RepairTier::kRegional, /*shed=*/false,
                     /*fault=*/false, /*deadline=*/false, &change));
  EXPECT_STREQ(change.why, "load");

  EXPECT_EQ(tracker.rung_changes(), 5);
  // Staying on the same rung is not a change.
  EXPECT_FALSE(Commit(tracker, 1.0, RepairTier::kRegional));
  EXPECT_EQ(tracker.rung_changes(), 5);
}

TEST(SloTrackerTest, WindowMergesLiveBucketsIntoRatesAndQuantiles) {
  SloTracker tracker(SmallWindow(), nullptr);
  tracker.UseManualClockForTest();
  tracker.AdvanceClockForTest(1.0);

  for (int i = 0; i < 20; ++i) {
    Commit(tracker, 1.0, RepairTier::kIncremental, /*shed=*/i < 5);
  }
  tracker.AdvanceClockForTest(9.0);  // t = 10 s, next time bucket.
  Commit(tracker, 500.0, RepairTier::kIncremental);

  const SloWindowStats stats = tracker.Window();
  EXPECT_EQ(stats.committed, 21);
  EXPECT_EQ(stats.shed, 5);
  EXPECT_NEAR(stats.shed_fraction, 5.0 / 21.0, 1e-12);
  EXPECT_NEAR(stats.covered_seconds, 10.0, 1e-9);
  EXPECT_NEAR(stats.mutations_per_sec, 2.1, 1e-9);
  // The bulk sits near 1 ms, the single 500 ms outlier drives the tail.
  EXPECT_LE(stats.p50_ms, 2.0);
  EXPECT_GE(stats.p99_ms, 100.0);
  EXPECT_LE(stats.p50_ms, stats.p99_ms);
}

TEST(SloTrackerTest, ExpiredBucketsDropOutOfTheWindow) {
  SloTracker tracker(SmallWindow(), nullptr);
  tracker.UseManualClockForTest();
  tracker.AdvanceClockForTest(1.0);
  for (int i = 0; i < 10; ++i) {
    Commit(tracker, 1.0, RepairTier::kIncremental, /*shed=*/true);
  }
  EXPECT_EQ(tracker.Window().committed, 10);
  EXPECT_NEAR(tracker.Window().shed_fraction, 1.0, 1e-12);

  // Two minutes later the whole first batch has aged out of the 60 s
  // window and its ring slots were reused in place.
  tracker.AdvanceClockForTest(120.0);
  Commit(tracker, 2.0, RepairTier::kIncremental);
  const SloWindowStats stats = tracker.Window();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_DOUBLE_EQ(stats.shed_fraction, 0.0);
}

TEST(SloTrackerTest, AttributesWallTimeToThePreMutationRung) {
  SloTracker tracker(SmallWindow(), nullptr);
  tracker.UseManualClockForTest();
  tracker.AdvanceClockForTest(1.0);
  Commit(tracker, 1.0, RepairTier::kIncremental);  // Rung initialized, t=1.

  tracker.AdvanceClockForTest(5.0);  // t = 6: those 5 s ran at incremental.
  Commit(tracker, 1.0, RepairTier::kRegional);

  tracker.AdvanceClockForTest(3.0);  // t = 9: 3 s at regional.
  Commit(tracker, 1.0, RepairTier::kRegional);

  const SloWindowStats stats = tracker.Window();
  EXPECT_NEAR(stats.time_in_rung_s[0], 5.0, 1e-9);
  EXPECT_NEAR(stats.time_in_rung_s[1], 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.time_in_rung_s[2], 0.0);
  EXPECT_DOUBLE_EQ(stats.time_in_rung_s[3], 0.0);
}

TEST(SloTrackerTest, CountsMissesAgainstTheConfiguredSlo) {
  SloTrackerOptions options = SmallWindow();
  options.slo_ms = 10.0;
  SloTracker tracker(options, nullptr);
  tracker.UseManualClockForTest();
  tracker.AdvanceClockForTest(1.0);
  Commit(tracker, 5.0, RepairTier::kIncremental);   // Within budget.
  Commit(tracker, 10.0, RepairTier::kIncremental);  // Exactly at — not a miss.
  Commit(tracker, 20.0, RepairTier::kIncremental);  // Miss.
  EXPECT_EQ(tracker.Window().misses, 1);
}

TEST(SloTrackerTest, PublishDeltasKeepCountersMonotonic) {
  obs::MetricsRegistry metrics;
  SloTrackerOptions options = SmallWindow();
  options.slo_ms = 10.0;
  SloTracker tracker(options, &metrics);
  tracker.UseManualClockForTest();
  tracker.AdvanceClockForTest(1.0);

  Commit(tracker, 1.0, RepairTier::kIncremental);
  tracker.AdvanceClockForTest(2.0);
  Commit(tracker, 50.0, RepairTier::kRegional, /*shed=*/false, /*fault=*/true);
  tracker.Publish();

  EXPECT_EQ(metrics.GetCounter("usep.serve.rung_changes")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("usep.serve.rung_change.fault")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("usep.serve.slo.misses")->Value(), 1);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("usep.serve.rung")->Value(), 1.0);
  // Those first 2 s ran at the incremental rung.
  EXPECT_EQ(
      metrics.GetCounter("usep.serve.time_in_rung_ms.incremental")->Value(),
      2000);

  // Publishing again without new activity must not double-count anything.
  tracker.Publish();
  EXPECT_EQ(metrics.GetCounter("usep.serve.rung_changes")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("usep.serve.slo.misses")->Value(), 1);
  EXPECT_EQ(
      metrics.GetCounter("usep.serve.time_in_rung_ms.incremental")->Value(),
      2000);

  // New activity shows up as a delta on top of the running totals.
  tracker.AdvanceClockForTest(4.0);
  Commit(tracker, 1.0, RepairTier::kIncremental);  // Recovered.
  tracker.Publish();
  EXPECT_EQ(metrics.GetCounter("usep.serve.rung_changes")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("usep.serve.rung_change.recovered")->Value(),
            1);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("usep.serve.rung")->Value(), 0.0);
  EXPECT_EQ(
      metrics.GetCounter("usep.serve.time_in_rung_ms.regional")->Value(),
      4000);
  // Window gauges track the merged stats.
  const SloWindowStats stats = tracker.Window();
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("usep.serve.slo.window.p99_ms")->Value(), stats.p99_ms);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("usep.serve.slo.window.mutations_per_sec")->Value(),
      stats.mutations_per_sec);
}

}  // namespace
}  // namespace usep::serve
