#ifndef USEP_TESTS_TESTING_TEST_INSTANCES_H_
#define USEP_TESTS_TESTING_TEST_INSTANCES_H_

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/planning.h"
#include "gen/generator_config.h"

namespace usep::testing {

// Asserts that `planning` satisfies every Definition 2 constraint against
// `instance`.  On failure the message carries the full ValidationReport
// (which constraint broke, for which event/user), so prefer
//   EXPECT_TRUE(IsValidPlanning(instance, planning));
// over EXPECT_TRUE(ValidatePlanning(...).ok()) — the latter loses the
// violation detail.
::testing::AssertionResult IsValidPlanning(const Instance& instance,
                                           const Planning& planning);

// The paper's running example (Table 1): four events, five users.
//
//          u1(59) u2(29) u3(51) u4(9) u5(33)   time        capacity
//   v1      0.2    0.6    0.7   0.3   0.6      1-4 p.m.    1
//   v2      0.5    0.1    0.3   0.9   0.5      3-6 p.m.    3
//   v3      0.6    0.2    0.9   0.4   0.5      1-2 p.m.    4
//   v4      0.4    0.7    0.2   0.5   0.1      6-7 p.m.    2
//
// Figure 1a's coordinates are only available as a picture, so the geometry
// here is ours (Manhattan metric, see the .cc); all golden expectations on
// this instance were derived by running the exact solver and hand-tracing
// the algorithms against *this* geometry.
Instance MakeTable1Instance();

// A deliberately tiny instance with an explicit (matrix) cost model:
// two disjoint events, two users, every cost spelled out.  v0 has capacity
// 1 so capacity contention is exercised.
Instance MakeTinyMatrixInstance();

// A single-user instance shaped like a knapsack (every pair of events
// chainable in sequence; event "weights" realized as costs), mirroring the
// Theorem 1 reduction.  values/weights must have equal length; `capacity`
// is the knapsack bound (the user's budget).
Instance MakeKnapsackInstance(const std::vector<double>& values,
                              const std::vector<Cost>& weights, Cost capacity);

// A small randomized configuration suitable for exact-solver cross-checks:
// |V| <= 6, |U| <= 4, moderate budgets.
GeneratorConfig SmallRandomConfig(uint64_t seed);

// A mid-sized configuration (|V| ~ 20, |U| ~ 60) for feasibility and
// equivalence property tests where exact solving is too slow.
GeneratorConfig MediumRandomConfig(uint64_t seed);

}  // namespace usep::testing

#endif  // USEP_TESTS_TESTING_TEST_INSTANCES_H_
