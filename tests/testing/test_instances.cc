#include "testing/test_instances.h"

#include <algorithm>

#include "common/logging.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/paper_example.h"

namespace usep::testing {

::testing::AssertionResult IsValidPlanning(const Instance& instance,
                                           const Planning& planning) {
  const ValidationReport report = ValidatePlanning(instance, planning);
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.ToString();
}

Instance MakeTable1Instance() { return MakePaperExampleInstance(); }

Instance MakeTinyMatrixInstance() {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1, "first");
  builder.AddEvent({20, 30}, 2, "second");
  builder.AddUser(20, "near");
  builder.AddUser(20, "far");

  auto model = std::make_shared<MatrixCostModel>(2, 2);
  model->SetEventPair(0, 1, 4);
  model->SetUserEventPair(0, 0, 2);
  model->SetUserEventPair(0, 1, 5);
  model->SetUserEventPair(1, 0, 3);
  model->SetUserEventPair(1, 1, 3);
  builder.SetCostModel(std::move(model));

  builder.SetUtility(0, 0, 0.9);
  builder.SetUtility(1, 0, 0.5);
  builder.SetUtility(0, 1, 0.8);
  // mu(1, 1) stays 0: the utility constraint forbids arranging it.

  StatusOr<Instance> instance = std::move(builder).Build();
  USEP_CHECK(instance.ok()) << instance.status();
  return *std::move(instance);
}

Instance MakeKnapsackInstance(const std::vector<double>& values,
                              const std::vector<Cost>& weights,
                              Cost capacity) {
  USEP_CHECK_EQ(values.size(), weights.size());
  const int n = static_cast<int>(values.size());
  const double max_value =
      values.empty() ? 1.0 : *std::max_element(values.begin(), values.end());

  InstanceBuilder builder;
  for (int i = 0; i < n; ++i) {
    builder.AddEvent({static_cast<TimePoint>(i) * 10,
                      static_cast<TimePoint>(i) * 10 + 5},
                     /*capacity=*/1);
  }
  // Theorem 1's construction scaled by 2 to keep integer costs:
  // cost(u, v_i) = w_i and cost(v_i, v_j) = w_i + w_j, so a schedule
  // {v_s1..v_sm} costs exactly 2 * sum(w_si); the budget is 2 * capacity.
  builder.AddUser(2 * capacity);

  auto model = std::make_shared<MatrixCostModel>(n, 1);
  for (int i = 0; i < n; ++i) {
    USEP_CHECK_GT(weights[i], 0);
    model->SetUserEventPair(0, i, weights[i]);
    for (int j = 0; j < n; ++j) {
      if (i != j) model->SetEventToEvent(i, j, weights[i] + weights[j]);
    }
  }
  builder.SetCostModel(std::move(model));

  for (int i = 0; i < n; ++i) {
    USEP_CHECK_GT(values[i], 0.0);
    builder.SetUtility(i, 0, values[i] / max_value);
  }

  StatusOr<Instance> instance = std::move(builder).Build();
  USEP_CHECK(instance.ok()) << instance.status();
  return *std::move(instance);
}

GeneratorConfig SmallRandomConfig(uint64_t seed) {
  GeneratorConfig config;
  config.num_events = 5;
  config.num_users = 3;
  config.capacity_mean = 2.0;
  config.budget_factor = 2.0;
  config.conflict_ratio = 0.3;
  config.grid_extent = 50;
  config.event_duration = 100;
  config.seed = seed;
  return config;
}

GeneratorConfig MediumRandomConfig(uint64_t seed) {
  GeneratorConfig config;
  config.num_events = 20;
  config.num_users = 60;
  config.capacity_mean = 5.0;
  config.budget_factor = 2.0;
  config.conflict_ratio = 0.25;
  config.grid_extent = 200;
  config.event_duration = 120;
  config.seed = seed;
  return config;
}

}  // namespace usep::testing
