#include "geo/cost_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace usep {
namespace {

TEST(MetricCostModelTest, DistancesMatchMetric) {
  MetricCostModel model(MetricKind::kManhattan, {{0, 0}, {3, 4}}, {{1, 1}});
  EXPECT_EQ(model.num_events(), 2);
  EXPECT_EQ(model.num_users(), 1);
  EXPECT_EQ(model.EventToEvent(0, 1), 7);
  EXPECT_EQ(model.EventToEvent(1, 0), 7);
  EXPECT_EQ(model.EventToEvent(0, 0), 0);
  EXPECT_EQ(model.UserToEvent(0, 0), 2);
  EXPECT_EQ(model.EventToUser(0, 0), 2);
  EXPECT_EQ(model.UserToEvent(0, 1), 5);
}

TEST(MetricCostModelTest, CloneIsIndependentButEqual) {
  MetricCostModel model(MetricKind::kEuclidean, {{0, 0}}, {{3, 4}});
  const std::unique_ptr<CostModel> clone = model.Clone();
  EXPECT_EQ(clone->UserToEvent(0, 0), 5);
  EXPECT_EQ(clone->num_events(), 1);
}

TEST(MetricCostModelTest, SatisfiesTriangleInequality) {
  Rng rng(7);
  std::vector<Point> events, users;
  for (int i = 0; i < 6; ++i) {
    events.push_back({rng.UniformInt(0, 100), rng.UniformInt(0, 100)});
  }
  for (int i = 0; i < 4; ++i) {
    users.push_back({rng.UniformInt(0, 100), rng.UniformInt(0, 100)});
  }
  for (const MetricKind kind :
       {MetricKind::kManhattan, MetricKind::kEuclidean,
        MetricKind::kChebyshev}) {
    MetricCostModel model(kind, events, users);
    EXPECT_TRUE(CheckTriangleInequality(model).ok()) << MetricKindName(kind);
  }
}

TEST(MatrixCostModelTest, DefaultsToZeroCosts) {
  MatrixCostModel model(2, 2);
  EXPECT_EQ(model.EventToEvent(0, 1), 0);
  EXPECT_EQ(model.UserToEvent(1, 1), 0);
  EXPECT_EQ(model.EventToUser(0, 0), 0);
}

TEST(MatrixCostModelTest, SettersAreDirectional) {
  MatrixCostModel model(2, 1);
  model.SetEventToEvent(0, 1, 5);
  EXPECT_EQ(model.EventToEvent(0, 1), 5);
  EXPECT_EQ(model.EventToEvent(1, 0), 0) << "only one direction was set";

  model.SetUserToEvent(0, 0, 3);
  model.SetEventToUser(0, 0, 9);
  EXPECT_EQ(model.UserToEvent(0, 0), 3);
  EXPECT_EQ(model.EventToUser(0, 0), 9);
}

TEST(MatrixCostModelTest, PairSettersSetBothDirections) {
  MatrixCostModel model(2, 1);
  model.SetEventPair(0, 1, 6);
  EXPECT_EQ(model.EventToEvent(0, 1), 6);
  EXPECT_EQ(model.EventToEvent(1, 0), 6);
  model.SetUserEventPair(0, 1, 4);
  EXPECT_EQ(model.UserToEvent(0, 1), 4);
  EXPECT_EQ(model.EventToUser(1, 0), 4);
}

TEST(MatrixCostModelDeathTest, NegativeCostAborts) {
  MatrixCostModel model(1, 1);
  EXPECT_DEATH(model.SetEventToEvent(0, 0, -1), "Check failed");
  EXPECT_DEATH(model.SetUserToEvent(0, 0, -1), "Check failed");
}

TEST(MatrixCostModelTest, CloneCopiesValues) {
  MatrixCostModel model(1, 1);
  model.SetUserEventPair(0, 0, 8);
  const std::unique_ptr<CostModel> clone = model.Clone();
  model.SetUserEventPair(0, 0, 1);
  EXPECT_EQ(clone->UserToEvent(0, 0), 8) << "clone must be a deep copy";
}

TEST(TriangleCheckTest, DetectsEventDetourViolation) {
  MatrixCostModel model(3, 0);
  model.SetEventPair(0, 1, 1);
  model.SetEventPair(1, 2, 1);
  model.SetEventPair(0, 2, 5);  // 5 > 1 + 1.
  const Status status = CheckTriangleInequality(model);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("triangle"), std::string::npos);
}

TEST(TriangleCheckTest, DetectsUserLegViolation) {
  MatrixCostModel model(2, 1);
  model.SetEventPair(0, 1, 1);
  model.SetUserEventPair(0, 0, 1);
  model.SetUserEventPair(0, 1, 10);  // user->e1 = 10 > user->e0 + e0->e1 = 2.
  EXPECT_FALSE(CheckTriangleInequality(model).ok());
}

TEST(TriangleCheckTest, AcceptsConsistentMatrix) {
  MatrixCostModel model(2, 2);
  model.SetEventPair(0, 1, 4);
  model.SetUserEventPair(0, 0, 2);
  model.SetUserEventPair(0, 1, 5);
  model.SetUserEventPair(1, 0, 3);
  model.SetUserEventPair(1, 1, 3);
  EXPECT_TRUE(CheckTriangleInequality(model).ok());
}

TEST(TriangleCheckTest, IgnoresUserUserLegs) {
  // Two users, one event: no user-user cost exists, so no triple through
  // both users can be formed and the check must pass trivially.
  MatrixCostModel model(1, 2);
  model.SetUserEventPair(0, 0, 1);
  model.SetUserEventPair(1, 0, 100);
  EXPECT_TRUE(CheckTriangleInequality(model).ok());
}

TEST(ParticipationFeesTest, FeesFoldIntoInboundLegs) {
  MatrixCostModel base(2, 1);
  base.SetEventPair(0, 1, 4);
  base.SetUserEventPair(0, 0, 2);
  base.SetUserEventPair(0, 1, 5);

  const std::unique_ptr<CostModel> priced =
      ApplyParticipationFees(base, {10, 20});
  // cost'(u, v) = cost(u, v) + fee_v.
  EXPECT_EQ(priced->UserToEvent(0, 0), 12);
  EXPECT_EQ(priced->UserToEvent(0, 1), 25);
  // cost'(v_i, v_j) = cost(v_i, v_j) + fee_j.
  EXPECT_EQ(priced->EventToEvent(0, 1), 24);
  EXPECT_EQ(priced->EventToEvent(1, 0), 14);
  // Return legs keep the raw cost (no fee going home).
  EXPECT_EQ(priced->EventToUser(0, 0), 2);
  EXPECT_EQ(priced->EventToUser(1, 0), 5);
}

TEST(ParticipationFeesDeathTest, NegativeFeeAborts) {
  MatrixCostModel base(1, 1);
  EXPECT_DEATH(ApplyParticipationFees(base, {-1}), "Check failed");
}

TEST(ParticipationFeesDeathTest, WrongFeeCountAborts) {
  MatrixCostModel base(2, 1);
  EXPECT_DEATH(ApplyParticipationFees(base, {1}), "Check failed");
}

}  // namespace
}  // namespace usep
