#include "geo/grid_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace usep {
namespace {

// Reference nearest: smallest distance, ties to the smallest index.
GridIndex::Neighbor BruteNearest(MetricKind metric,
                                 const std::vector<Point>& points,
                                 const Point& query) {
  GridIndex::Neighbor best;
  for (size_t i = 0; i < points.size(); ++i) {
    const Cost distance = Distance(metric, query, points[i]);
    if (distance < best.distance) {
      best.distance = distance;
      best.index = static_cast<int>(i);
    }
  }
  return best;
}

TEST(GridIndexTest, EmptyIndexReturnsInfinity) {
  const GridIndex index({});
  const GridIndex::Neighbor neighbor =
      index.Nearest(MetricKind::kManhattan, {5, 5});
  EXPECT_EQ(neighbor.index, -1);
  EXPECT_TRUE(IsInfiniteCost(neighbor.distance));
  EXPECT_TRUE(index.WithinRadius(MetricKind::kManhattan, {0, 0}, 100).empty());
}

TEST(GridIndexTest, SinglePoint) {
  const GridIndex index({{10, 20}});
  const GridIndex::Neighbor neighbor =
      index.Nearest(MetricKind::kManhattan, {13, 24});
  EXPECT_EQ(neighbor.index, 0);
  EXPECT_EQ(neighbor.distance, 7);
}

TEST(GridIndexTest, ExactHitHasZeroDistance) {
  const GridIndex index({{3, 3}, {9, 9}});
  const GridIndex::Neighbor neighbor =
      index.Nearest(MetricKind::kEuclidean, {9, 9});
  EXPECT_EQ(neighbor.index, 1);
  EXPECT_EQ(neighbor.distance, 0);
}

TEST(GridIndexTest, DuplicatePointsTieToSmallestIndex) {
  const GridIndex index({{5, 5}, {5, 5}, {5, 5}});
  const GridIndex::Neighbor neighbor =
      index.Nearest(MetricKind::kManhattan, {6, 6});
  EXPECT_EQ(neighbor.index, 0);
}

class GridIndexRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, MetricKind>> {};

TEST_P(GridIndexRandomTest, NearestMatchesBruteForce) {
  Rng rng(std::get<0>(GetParam()));
  const MetricKind metric = std::get<1>(GetParam());
  std::vector<Point> points(200);
  for (Point& p : points) {
    p.x = rng.UniformInt(0, 1000);
    p.y = rng.UniformInt(0, 1000);
  }
  const GridIndex index(points);
  for (int trial = 0; trial < 200; ++trial) {
    // Mix of inside-grid and far-outside queries.
    const Point query{rng.UniformInt(-500, 1500), rng.UniformInt(-500, 1500)};
    const GridIndex::Neighbor fast = index.Nearest(metric, query);
    const GridIndex::Neighbor slow = BruteNearest(metric, points, query);
    EXPECT_EQ(fast.distance, slow.distance) << query.ToString();
    EXPECT_EQ(fast.index, slow.index) << query.ToString();
  }
}

TEST_P(GridIndexRandomTest, WithinRadiusMatchesBruteForce) {
  Rng rng(std::get<0>(GetParam()) + 1000);
  const MetricKind metric = std::get<1>(GetParam());
  std::vector<Point> points(150);
  for (Point& p : points) {
    p.x = rng.UniformInt(0, 400);
    p.y = rng.UniformInt(0, 400);
  }
  const GridIndex index(points);
  for (int trial = 0; trial < 50; ++trial) {
    const Point query{rng.UniformInt(-100, 500), rng.UniformInt(-100, 500)};
    const Cost radius = rng.UniformInt(0, 150);
    std::vector<int> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (Distance(metric, query, points[i]) <= radius) {
        expected.push_back(static_cast<int>(i));
      }
    }
    EXPECT_EQ(index.WithinRadius(metric, query, radius), expected)
        << query.ToString() << " r=" << (long long)radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMetrics, GridIndexRandomTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 6),
                       ::testing::Values(MetricKind::kManhattan,
                                         MetricKind::kEuclidean,
                                         MetricKind::kChebyshev)));

TEST(GridIndexTest, ClusteredPointsStillCorrect) {
  // Pathological for a uniform grid: everything in one tiny cluster plus a
  // far outlier.
  Rng rng(99);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.UniformInt(0, 5), rng.UniformInt(0, 5)});
  }
  points.push_back({100000, 100000});
  const GridIndex index(points);
  const GridIndex::Neighbor near_cluster =
      index.Nearest(MetricKind::kManhattan, {2, 2});
  EXPECT_EQ(near_cluster.distance,
            BruteNearest(MetricKind::kManhattan, points, {2, 2}).distance);
  const GridIndex::Neighbor near_outlier =
      index.Nearest(MetricKind::kManhattan, {99999, 99998});
  EXPECT_EQ(near_outlier.index, 100);
}

TEST(GridIndexTest, ExplicitCellSizeRespected) {
  const GridIndex index({{0, 0}, {100, 100}}, 25);
  EXPECT_EQ(index.cell_size(), 25);
  EXPECT_EQ(index.Nearest(MetricKind::kManhattan, {1, 1}).index, 0);
}

TEST(GridIndexTest, NegativeRadiusYieldsNothing) {
  const GridIndex index({{0, 0}});
  EXPECT_TRUE(index.WithinRadius(MetricKind::kManhattan, {0, 0}, -1).empty());
}

TEST(GridIndexTest, ZeroRadiusFindsExactHitsOnly) {
  const GridIndex index({{3, 3}, {4, 4}});
  EXPECT_EQ(index.WithinRadius(MetricKind::kManhattan, {3, 3}, 0),
            (std::vector<int>{0}));
}

}  // namespace
}  // namespace usep
