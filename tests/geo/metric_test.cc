#include "geo/metric.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace usep {
namespace {

TEST(CostTest, InfinityDetection) {
  EXPECT_TRUE(IsInfiniteCost(kInfiniteCost));
  EXPECT_TRUE(IsInfiniteCost(kInfiniteCost + 5));
  EXPECT_FALSE(IsInfiniteCost(0));
  EXPECT_FALSE(IsInfiniteCost(kInfiniteCost - 1));
}

TEST(CostTest, AddCostSaturates) {
  EXPECT_EQ(AddCost(3, 4), 7);
  EXPECT_EQ(AddCost(kInfiniteCost, 4), kInfiniteCost);
  EXPECT_EQ(AddCost(4, kInfiniteCost), kInfiniteCost);
  EXPECT_EQ(AddCost(kInfiniteCost, kInfiniteCost), kInfiniteCost);
}

TEST(CostTest, RepeatedInfiniteAdditionDoesNotOverflow) {
  Cost total = 0;
  for (int i = 0; i < 100; ++i) total = AddCost(total, kInfiniteCost);
  EXPECT_EQ(total, kInfiniteCost);
}

TEST(MetricTest, ManhattanKnownValues) {
  EXPECT_EQ(Distance(MetricKind::kManhattan, {0, 0}, {3, 4}), 7);
  EXPECT_EQ(Distance(MetricKind::kManhattan, {-2, -3}, {1, 1}), 7);
  EXPECT_EQ(Distance(MetricKind::kManhattan, {5, 5}, {5, 5}), 0);
}

TEST(MetricTest, EuclideanKnownValues) {
  EXPECT_EQ(Distance(MetricKind::kEuclidean, {0, 0}, {3, 4}), 5);
  EXPECT_EQ(Distance(MetricKind::kEuclidean, {0, 0}, {1, 1}), 2);  // ceil(1.41)
  EXPECT_EQ(Distance(MetricKind::kEuclidean, {0, 0}, {0, 0}), 0);
}

TEST(MetricTest, ChebyshevKnownValues) {
  EXPECT_EQ(Distance(MetricKind::kChebyshev, {0, 0}, {3, 4}), 4);
  EXPECT_EQ(Distance(MetricKind::kChebyshev, {2, 2}, {-1, 3}), 3);
}

class MetricPropertyTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(MetricPropertyTest, SymmetryAndIdentity) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const Point a{rng.UniformInt(-1000, 1000), rng.UniformInt(-1000, 1000)};
    const Point b{rng.UniformInt(-1000, 1000), rng.UniformInt(-1000, 1000)};
    EXPECT_EQ(Distance(GetParam(), a, b), Distance(GetParam(), b, a));
    EXPECT_EQ(Distance(GetParam(), a, a), 0);
    EXPECT_GE(Distance(GetParam(), a, b), 0);
  }
}

TEST_P(MetricPropertyTest, TriangleInequality) {
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    const Point a{rng.UniformInt(-500, 500), rng.UniformInt(-500, 500)};
    const Point b{rng.UniformInt(-500, 500), rng.UniformInt(-500, 500)};
    const Point c{rng.UniformInt(-500, 500), rng.UniformInt(-500, 500)};
    EXPECT_LE(Distance(GetParam(), a, c),
              Distance(GetParam(), a, b) + Distance(GetParam(), b, c))
        << a.ToString() << " " << b.ToString() << " " << c.ToString();
  }
}

// The regression the ceil-rounding exists for: nearly-collinear points whose
// round-to-nearest Euclidean distances would violate the triangle
// inequality.
TEST(MetricTest, EuclideanCeilPreservesTriangleOnCollinearPoints) {
  const Point a{0, 0};
  const Point b{3, 4};    // |ab| = 5
  const Point c{6, 8};    // |ac| = 10, |bc| = 5
  EXPECT_LE(Distance(MetricKind::kEuclidean, a, c),
            Distance(MetricKind::kEuclidean, a, b) +
                Distance(MetricKind::kEuclidean, b, c));
  // Half-distances of 5.4-ish: round() would give 5+5 < 11.
  const Point p{0, 0};
  const Point q{38, 38};   // sqrt(2888) ~ 53.74 -> ceil 54
  const Point r{76, 76};   // sqrt(11552) ~ 107.48 -> ceil 108
  EXPECT_LE(Distance(MetricKind::kEuclidean, p, r),
            Distance(MetricKind::kEuclidean, p, q) +
                Distance(MetricKind::kEuclidean, q, r));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(MetricKind::kManhattan,
                                           MetricKind::kEuclidean,
                                           MetricKind::kChebyshev),
                         [](const auto& info) {
                           return MetricKindName(info.param);
                         });

TEST(MetricKindTest, NamesRoundTripThroughParse) {
  for (const MetricKind kind :
       {MetricKind::kManhattan, MetricKind::kEuclidean,
        MetricKind::kChebyshev}) {
    const StatusOr<MetricKind> parsed = ParseMetricKind(MetricKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(MetricKindTest, ParseIsCaseInsensitive) {
  const StatusOr<MetricKind> parsed = ParseMetricKind("  MANHATTAN ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, MetricKind::kManhattan);
}

TEST(MetricKindTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseMetricKind("hamming").ok());
}

}  // namespace
}  // namespace usep
