#include "gen/arrival_trace.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "serve/world.h"

namespace usep::gen {
namespace {

TEST(ArrivalTraceTest, IsDeterministicInSeed) {
  ArrivalTraceConfig config;
  config.num_mutations = 120;
  const StatusOr<ArrivalTrace> a = GenerateArrivalTrace(config);
  const StatusOr<ArrivalTrace> b = GenerateArrivalTrace(config);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeTrace(*a), SerializeTrace(*b));

  config.seed = 7;
  const StatusOr<ArrivalTrace> c = GenerateArrivalTrace(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(SerializeTrace(*a), SerializeTrace(*c));
}

TEST(ArrivalTraceTest, EveryTraceAppliesCleanly) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ArrivalTraceConfig config;
    config.num_mutations = 150;
    config.seed = seed;
    const StatusOr<ArrivalTrace> trace = GenerateArrivalTrace(config);
    ASSERT_TRUE(trace.ok()) << trace.status();
    ASSERT_EQ(trace->mutations.size(), 150u);

    serve::World world(trace->world);
    for (size_t i = 0; i < trace->mutations.size(); ++i) {
      const Status applied = world.Apply(trace->mutations[i]);
      ASSERT_TRUE(applied.ok())
          << "seed " << seed << " mutation " << i << ": " << applied;
    }
  }
}

TEST(ArrivalTraceTest, MixesAllMutationKinds) {
  ArrivalTraceConfig config;
  config.num_mutations = 400;
  const StatusOr<ArrivalTrace> trace = GenerateArrivalTrace(config);
  ASSERT_TRUE(trace.ok());
  int counts[5] = {0, 0, 0, 0, 0};
  for (const serve::Mutation& m : trace->mutations) {
    ++counts[static_cast<int>(m.kind)];
  }
  for (int k = 0; k < 5; ++k) {
    EXPECT_GT(counts[k], 0) << serve::MutationKindName(
        static_cast<serve::MutationKind>(k));
  }
}

TEST(ArrivalTraceTest, WarmupPrefixOnlyAdds) {
  ArrivalTraceConfig config;
  config.warmup_users = 5;
  config.warmup_events = 4;
  config.num_mutations = 50;
  const StatusOr<ArrivalTrace> trace = GenerateArrivalTrace(config);
  ASSERT_TRUE(trace.ok());
  for (int i = 0; i < 9; ++i) {
    const serve::MutationKind kind = trace->mutations[i].kind;
    EXPECT_TRUE(kind == serve::MutationKind::kUserJoin ||
                kind == serve::MutationKind::kEventPost)
        << "warmup mutation " << i;
  }
}

TEST(ArrivalTraceTest, RejectsNonsenseConfigs) {
  ArrivalTraceConfig config;
  config.num_mutations = -1;
  EXPECT_FALSE(GenerateArrivalTrace(config).ok());
  config = ArrivalTraceConfig{};
  config.p_user_join = config.p_user_leave = config.p_event_post =
      config.p_event_cancel = config.p_capacity_change = 0.0;
  EXPECT_FALSE(GenerateArrivalTrace(config).ok());
}

TEST(ArrivalTraceTest, FileRoundTrips) {
  ArrivalTraceConfig config;
  config.num_mutations = 60;
  const StatusOr<ArrivalTrace> trace = GenerateArrivalTrace(config);
  ASSERT_TRUE(trace.ok());

  const std::string path = ::testing::TempDir() + "/usep_trace.txt";
  ASSERT_TRUE(WriteTraceFile(*trace, path).ok());
  const StatusOr<ArrivalTrace> parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeTrace(*parsed), SerializeTrace(*trace));
  std::remove(path.c_str());

  EXPECT_FALSE(DeserializeTrace("").ok());
  EXPECT_FALSE(DeserializeTrace("USEP-TRACE 1\nworld manhattan").ok());
  const std::string text = SerializeTrace(*trace);
  EXPECT_FALSE(DeserializeTrace(text.substr(0, text.size() / 2)).ok());
}

}  // namespace
}  // namespace usep::gen
