#include "gen/synthetic_generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(GeneratorConfigTest, DefaultsMatchTable7Bold) {
  const GeneratorConfig config;
  EXPECT_EQ(config.num_events, 100);
  EXPECT_EQ(config.num_users, 5000);
  EXPECT_EQ(config.utility_distribution, "uniform");
  EXPECT_DOUBLE_EQ(config.capacity_mean, 50.0);
  EXPECT_DOUBLE_EQ(config.budget_factor, 2.0);
  EXPECT_DOUBLE_EQ(config.conflict_ratio, 0.25);
}

TEST(GeneratorConfigTest, ToStringMentionsKnobs) {
  const std::string text = GeneratorConfig().ToString();
  EXPECT_NE(text.find("|V|=100"), std::string::npos);
  EXPECT_NE(text.find("cr=0.25"), std::string::npos);
}

TEST(GeneratorTest, DeterministicInSeed) {
  const GeneratorConfig config = testing::MediumRandomConfig(1234);
  const StatusOr<Instance> a = GenerateSyntheticInstance(config);
  const StatusOr<Instance> b = GenerateSyntheticInstance(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_events(), b->num_events());
  for (EventId v = 0; v < a->num_events(); ++v) {
    EXPECT_EQ(a->event(v).interval, b->event(v).interval);
    EXPECT_EQ(a->event(v).capacity, b->event(v).capacity);
  }
  for (UserId u = 0; u < a->num_users(); ++u) {
    EXPECT_EQ(a->user(u).budget, b->user(u).budget);
    EXPECT_DOUBLE_EQ(a->utility(0, u), b->utility(0, u));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config = testing::MediumRandomConfig(1);
  const StatusOr<Instance> a = GenerateSyntheticInstance(config);
  config.seed = 2;
  const StatusOr<Instance> b = GenerateSyntheticInstance(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  for (UserId u = 0; u < a->num_users() && !any_difference; ++u) {
    any_difference |= a->user(u).budget != b->user(u).budget;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, RejectsBadConfigs) {
  GeneratorConfig config;
  config.conflict_ratio = 1.5;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
  config = GeneratorConfig();
  config.grid_extent = 0;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
  config = GeneratorConfig();
  config.utility_distribution = "cauchy";
  config.num_events = 2;
  config.num_users = 2;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
}

class ConflictRatioTest
    : public ::testing::TestWithParam<std::tuple<double, ConflictStrategy>> {};

TEST_P(ConflictRatioTest, MeasuredRatioTracksTarget) {
  const double target = std::get<0>(GetParam());
  GeneratorConfig config;
  config.num_events = 120;
  config.num_users = 5;
  config.conflict_ratio = target;
  config.conflict_strategy = std::get<1>(GetParam());
  config.seed = 77;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double measured = instance->MeasuredConflictRatio();
  if (target == 0.0) {
    EXPECT_EQ(measured, 0.0);
  } else if (target == 1.0 &&
             std::get<1>(GetParam()) == ConflictStrategy::kClique) {
    EXPECT_EQ(measured, 1.0);
  } else {
    EXPECT_NEAR(measured, target, 0.08) << "strategy "
        << ConflictStrategyName(std::get<1>(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndStrategies, ConflictRatioTest,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(ConflictStrategy::kRandomWindows,
                                         ConflictStrategy::kClique)));

TEST(GenerateEventTimesTest, ZeroConflictGivesDisjointIntervals) {
  Rng rng(5);
  const auto times =
      GenerateEventTimes(50, 120, 0.0, ConflictStrategy::kRandomWindows, rng);
  for (size_t i = 0; i < times.size(); ++i) {
    for (size_t j = i + 1; j < times.size(); ++j) {
      EXPECT_FALSE(times[i].Overlaps(times[j]));
    }
  }
}

TEST(GenerateEventTimesTest, FullConflictRandomWindowsNearlyAllOverlap) {
  Rng rng(6);
  const auto times =
      GenerateEventTimes(60, 120, 1.0, ConflictStrategy::kRandomWindows, rng);
  int overlapping = 0;
  int total = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    for (size_t j = i + 1; j < times.size(); ++j) {
      ++total;
      if (times[i].Overlaps(times[j])) ++overlapping;
    }
  }
  EXPECT_GT(static_cast<double>(overlapping) / total, 0.95);
}

TEST(GenerateEventTimesTest, AllIntervalsHaveRequestedDuration) {
  Rng rng(7);
  const auto times =
      GenerateEventTimes(30, 90, 0.4, ConflictStrategy::kRandomWindows, rng);
  for (const TimeInterval& interval : times) {
    EXPECT_EQ(interval.duration(), 90);
  }
}

TEST(GenerateEventTimesTest, EmptyAndSingleEventCases) {
  Rng rng(8);
  EXPECT_TRUE(
      GenerateEventTimes(0, 100, 0.5, ConflictStrategy::kClique, rng).empty());
  EXPECT_EQ(
      GenerateEventTimes(1, 100, 0.5, ConflictStrategy::kClique, rng).size(),
      1u);
}

TEST(GenerateBudgetTest, UniformWithinPaperBounds) {
  Rng rng(9);
  // b_u ~ U[2 * min, 2 * min + 2 * mid * f_b].
  const Cost min_cost = 30;
  const Cost mid = 100;
  const double fb = 2.0;
  for (int i = 0; i < 2000; ++i) {
    const StatusOr<Cost> budget =
        GenerateBudget(min_cost, mid, fb, "uniform", rng);
    ASSERT_TRUE(budget.ok());
    EXPECT_GE(*budget, 2 * min_cost);
    EXPECT_LE(*budget, 2 * min_cost + static_cast<Cost>(2 * mid * fb));
  }
}

TEST(GenerateBudgetTest, ZeroFactorPinsToRoundTripMinimum) {
  Rng rng(10);
  const StatusOr<Cost> budget = GenerateBudget(25, 100, 0.0, "uniform", rng);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 50);
}

TEST(GenerateBudgetTest, NormalMeanMatchesFormula) {
  Rng rng(11);
  // Mean = 2 * min + mid * f_b = 60 + 200 = 260.
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const StatusOr<Cost> budget =
        GenerateBudget(30, 100, 2.0, "normal", rng);
    ASSERT_TRUE(budget.ok());
    EXPECT_GE(*budget, 0);
    sum += static_cast<double>(*budget);
  }
  EXPECT_NEAR(sum / n, 260.0, 5.0);
}

TEST(GenerateBudgetTest, RejectsBadInputs) {
  Rng rng(12);
  EXPECT_FALSE(GenerateBudget(10, 10, -1.0, "uniform", rng).ok());
  EXPECT_FALSE(GenerateBudget(10, 10, 1.0, "zipf", rng).ok());
}

TEST(GenerateCapacityTest, UniformMeanAndBounds) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const StatusOr<int> capacity = GenerateCapacity(50.0, "uniform", rng);
    ASSERT_TRUE(capacity.ok());
    EXPECT_GE(*capacity, 25);
    EXPECT_LE(*capacity, 75);
    sum += *capacity;
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(GenerateCapacityTest, NormalClampedToAtLeastOne) {
  Rng rng(14);
  for (int i = 0; i < 5000; ++i) {
    const StatusOr<int> capacity = GenerateCapacity(1.0, "normal", rng);
    ASSERT_TRUE(capacity.ok());
    EXPECT_GE(*capacity, 1);
  }
}

TEST(GenerateCapacityTest, RejectsBadInputs) {
  Rng rng(15);
  EXPECT_FALSE(GenerateCapacity(0.5, "uniform", rng).ok());
  EXPECT_FALSE(GenerateCapacity(10.0, "exponential", rng).ok());
}

TEST(GeneratorTest, BudgetsAlwaysCoverNearestEventRoundTrip) {
  // By the paper's formula, b_u >= 2 * min_v cost(u, v): every user can
  // afford at least their nearest event (if interested).
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(55));
  ASSERT_TRUE(instance.ok());
  for (UserId u = 0; u < instance->num_users(); ++u) {
    Cost nearest = kInfiniteCost;
    for (EventId v = 0; v < instance->num_events(); ++v) {
      nearest = std::min(nearest, instance->RoundTripCost(u, v));
    }
    EXPECT_GE(instance->user(u).budget, nearest);
  }
}

TEST(GeneratorTest, UtilitiesRespectDistributionBounds) {
  GeneratorConfig config = testing::MediumRandomConfig(66);
  config.utility_distribution = "power:4";
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  double sum = 0.0;
  int count = 0;
  for (EventId v = 0; v < instance->num_events(); ++v) {
    for (UserId u = 0; u < instance->num_users(); ++u) {
      const double mu = instance->utility(v, u);
      ASSERT_GE(mu, 0.0);
      ASSERT_LE(mu, 1.0);
      sum += mu;
      ++count;
    }
  }
  EXPECT_GT(sum / count, 0.7) << "power:4 skews toward 1 (mean 0.8)";
}

TEST(GeneratorTest, ZeroSizedInstancesSupported) {
  GeneratorConfig config;
  config.num_events = 0;
  config.num_users = 0;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_events(), 0);
  EXPECT_EQ(instance->num_users(), 0);
}

}  // namespace
}  // namespace usep
