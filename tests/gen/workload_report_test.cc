#include "gen/workload_report.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(WorkloadReportTest, Table1InstanceNumbers) {
  const Instance instance = testing::MakeTable1Instance();
  const InstanceReport report = AnalyzeInstance(instance);
  EXPECT_EQ(report.num_events, 4);
  EXPECT_EQ(report.num_users, 5);
  EXPECT_EQ(report.horizon_start, 780);
  EXPECT_EQ(report.horizon_end, 1140);
  // Durations: 180, 180, 60, 60 -> mean 120.
  EXPECT_DOUBLE_EQ(report.mean_event_duration, 120.0);
  EXPECT_NEAR(report.measured_conflict_ratio, 2.0 / 6.0, 1e-12);
  // v1 conflicts with v2 and v3 -> degree 2; v2 and v3 each 1; v4 0.
  EXPECT_DOUBLE_EQ(report.mean_conflict_degree, 1.0);
  EXPECT_EQ(report.max_conflict_degree, 2);
  EXPECT_EQ(report.capacity_min, 1);
  EXPECT_EQ(report.capacity_max, 4);
  EXPECT_DOUBLE_EQ(report.capacity_mean, 2.5);
  EXPECT_EQ(report.total_seats, 10);
  EXPECT_EQ(report.budget_min, 9);
  EXPECT_EQ(report.budget_max, 59);
  EXPECT_DOUBLE_EQ(report.budget_mean, (59 + 29 + 51 + 9 + 33) / 5.0);
  // All 20 utilities are positive.
  EXPECT_DOUBLE_EQ(report.utility_nonzero_fraction, 1.0);
  EXPECT_GT(report.utility_mean, 0.0);
  EXPECT_GT(report.mean_affordable_fraction, 0.0);
  EXPECT_LE(report.mean_affordable_fraction, 1.0);
}

TEST(WorkloadReportTest, EmptyInstance) {
  InstanceBuilder builder;
  builder.SetMetricLayout(MetricKind::kManhattan, {}, {});
  const Instance instance = *std::move(builder).Build();
  const InstanceReport report = AnalyzeInstance(instance);
  EXPECT_EQ(report.num_events, 0);
  EXPECT_EQ(report.num_users, 0);
  EXPECT_EQ(report.total_seats, 0);
  EXPECT_DOUBLE_EQ(report.utility_mean, 0.0);
}

TEST(WorkloadReportTest, TracksGeneratorKnobs) {
  GeneratorConfig config = testing::MediumRandomConfig(42);
  config.conflict_ratio = 0.5;
  config.capacity_mean = 8.0;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const InstanceReport report = AnalyzeInstance(*instance);
  EXPECT_NEAR(report.measured_conflict_ratio, 0.5, 0.15);
  EXPECT_NEAR(report.capacity_mean, 8.0, 2.0);
  EXPECT_DOUBLE_EQ(report.mean_event_duration, 120.0);
  // The budget formula guarantees each user affords their nearest event,
  // so affordability is bounded away from zero.
  EXPECT_GT(report.mean_affordable_fraction, 0.05);
}

TEST(WorkloadReportTest, ToStringCarriesHeadlineNumbers) {
  const Instance instance = testing::MakeTable1Instance();
  const std::string text = AnalyzeInstance(instance).ToString();
  EXPECT_NE(text.find("|V|=4"), std::string::npos);
  EXPECT_NE(text.find("|U|=5"), std::string::npos);
  EXPECT_NE(text.find("cr=0.333"), std::string::npos);
}

}  // namespace
}  // namespace usep
