#include "core/validation.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Builds a permissive twin of an instance (huge budgets/capacities, no
// conflicts matter because we pick disjoint events) so we can construct
// plannings that violate a *stricter* instance's constraints, then validate
// against the strict one.  Both instances must have identical dimensions.

TEST(ValidationTest, ValidPlanningPasses) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));
  ASSERT_TRUE(planning.TryAssign(1, 0));
  const ValidationReport report = ValidatePlanning(instance, planning);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_DOUBLE_EQ(report.recomputed_utility, planning.total_utility());
  EXPECT_TRUE(CheckPlanningFeasible(instance, planning).ok());
}

TEST(ValidationTest, EmptyPlanningIsValid) {
  const Instance instance = testing::MakeTable1Instance();
  const Planning planning(instance);
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

// Shared scaffolding: two disjoint events, one user; permissive instance for
// building, strict variants for validating.
Instance BuildTwoEventInstance(int capacity0, Cost budget,
                               TimeInterval interval1, double mu0) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, capacity0);
  builder.AddEvent(interval1, 5);
  builder.AddUser(budget);
  builder.AddUser(budget);
  builder.SetUtility(0, 0, mu0);
  builder.SetUtility(1, 0, 0.5);
  builder.SetUtility(0, 1, 0.5);
  builder.SetUtility(1, 1, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{5, 0}, {10, 0}},
                          {{0, 0}, {1, 0}});
  return *std::move(builder).Build();
}

Instance Permissive() {
  return BuildTwoEventInstance(5, 1000, {20, 30}, 0.5);
}

TEST(ValidationTest, DetectsCapacityViolation) {
  const Instance permissive = Permissive();
  const Instance strict = BuildTwoEventInstance(1, 1000, {20, 30}, 0.5);
  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(0, 1));  // Two users; strict capacity is 1.
  const ValidationReport report = ValidatePlanning(strict, planning);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& violation : report.violations) {
    if (violation.kind == ConstraintKind::kCapacity && violation.event == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST(ValidationTest, DetectsBudgetViolation) {
  const Instance permissive = Permissive();
  // Strict budget 8 < round trip of event 1 for user 0 (2 * 10 = 20).
  const Instance strict = BuildTwoEventInstance(5, 8, {20, 30}, 0.5);
  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(1, 0));
  const ValidationReport report = ValidatePlanning(strict, planning);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ConstraintKind::kBudget);
  EXPECT_EQ(report.violations[0].user, 0);
}

TEST(ValidationTest, DetectsFeasibilityViolation) {
  const Instance permissive = Permissive();
  // In the strict instance event 1 overlaps event 0.
  const Instance strict = BuildTwoEventInstance(5, 1000, {5, 15}, 0.5);
  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(1, 0));
  const ValidationReport report = ValidatePlanning(strict, planning);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& violation : report.violations) {
    found |= violation.kind == ConstraintKind::kFeasibility;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST(ValidationTest, DetectsUtilityViolation) {
  const Instance permissive = Permissive();
  // Strict instance: mu(event 0, user 0) = 0.
  const Instance strict = BuildTwoEventInstance(5, 1000, {20, 30}, 0.0);
  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  const ValidationReport report = ValidatePlanning(strict, planning);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ConstraintKind::kUtility);
  EXPECT_EQ(report.violations[0].event, 0);
  EXPECT_EQ(report.violations[0].user, 0);
}

TEST(ValidationTest, DetectsStaleRouteCostAsInternal) {
  // Validate against an instance with different geometry: the cached route
  // cost no longer matches.
  const Instance permissive = Permissive();
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 5);
  builder.AddEvent({20, 30}, 5);
  builder.AddUser(1000);
  builder.AddUser(1000);
  for (EventId v = 0; v < 2; ++v) {
    for (UserId u = 0; u < 2; ++u) builder.SetUtility(v, u, 0.5);
  }
  builder.SetMetricLayout(MetricKind::kManhattan, {{50, 0}, {10, 0}},
                          {{0, 0}, {1, 0}});
  const Instance moved = *std::move(builder).Build();

  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  const ValidationReport report = ValidatePlanning(moved, planning);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& violation : report.violations) {
    found |= violation.kind == ConstraintKind::kInternal;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST(ValidationTest, ReportToStringListsViolations) {
  const Instance permissive = Permissive();
  const Instance strict = BuildTwoEventInstance(1, 1000, {20, 30}, 0.5);
  Planning planning(permissive);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(0, 1));
  const ValidationReport report = ValidatePlanning(strict, planning);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("capacity"), std::string::npos);
  EXPECT_FALSE(CheckPlanningFeasible(strict, planning).ok());
}

TEST(ValidationTest, ConstraintKindNamesAreStable) {
  EXPECT_STREQ(ConstraintKindName(ConstraintKind::kCapacity), "capacity");
  EXPECT_STREQ(ConstraintKindName(ConstraintKind::kBudget), "budget");
  EXPECT_STREQ(ConstraintKindName(ConstraintKind::kFeasibility),
               "feasibility");
  EXPECT_STREQ(ConstraintKindName(ConstraintKind::kUtility), "utility");
  EXPECT_STREQ(ConstraintKindName(ConstraintKind::kInternal), "internal");
}

}  // namespace
}  // namespace usep
