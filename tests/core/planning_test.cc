#include "core/planning.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "core/objective.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(PlanningTest, StartsEmpty) {
  const Instance instance = testing::MakeTable1Instance();
  const Planning planning(instance);
  EXPECT_EQ(planning.num_users(), 5);
  EXPECT_EQ(planning.total_assignments(), 0);
  EXPECT_DOUBLE_EQ(planning.total_utility(), 0.0);
  for (EventId v = 0; v < instance.num_events(); ++v) {
    EXPECT_EQ(planning.assigned_count(v), 0);
    EXPECT_EQ(planning.remaining_capacity(v), instance.event(v).capacity);
  }
}

TEST(PlanningTest, AssignUpdatesBookkeeping) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(/*v=*/2, /*u=*/2));  // v3 to u3, mu = 0.9.
  EXPECT_EQ(planning.assigned_count(2), 1);
  EXPECT_EQ(planning.total_assignments(), 1);
  EXPECT_DOUBLE_EQ(planning.total_utility(), 0.9);
  EXPECT_TRUE(planning.schedule(2).Contains(2));
  EXPECT_DOUBLE_EQ(TotalUtility(instance, planning), 0.9);
}

TEST(PlanningTest, CapacityConstraintEnforced) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  // v1 (event 0) has capacity 1.
  ASSERT_TRUE(planning.TryAssign(0, 1));
  EXPECT_TRUE(planning.EventFull(0));
  EXPECT_FALSE(planning.TryAssign(0, 2)) << "capacity 1 already used";
  EXPECT_EQ(planning.remaining_capacity(0), 0);
}

TEST(PlanningTest, UtilityConstraintEnforced) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  Planning planning(instance);
  // mu(event 1, user 1) == 0: must never be arranged.
  EXPECT_FALSE(planning.TryAssign(1, 1));
}

TEST(PlanningTest, BudgetConstraintEnforced) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  // u2 (user 1, budget 29) at (10,18): v3 (event 2) at (3,7) is distance
  // 18, round trip 36 > 29 -> rejected.  v1 (event 0) at (4,11) is distance
  // 13, round trip 26 <= 29 -> accepted.
  EXPECT_FALSE(planning.TryAssign(2, 1));
  EXPECT_TRUE(planning.TryAssign(0, 1));
}

TEST(PlanningTest, TimeConflictEnforcedAcrossAssignments) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  // v1 [780,960] conflicts with v2 [900,1080] for the same user.
  ASSERT_TRUE(planning.TryAssign(0, 2));
  EXPECT_FALSE(planning.TryAssign(1, 2));
  // A different user can still take v2.
  EXPECT_TRUE(planning.TryAssign(1, 0));
}

TEST(PlanningTest, DuplicateAssignmentRejected) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 0));
  EXPECT_FALSE(planning.TryAssign(2, 0));
}

TEST(PlanningTest, UnassignRollsEverythingBack) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));
  ASSERT_TRUE(planning.TryAssign(1, 2));
  const double utility_before = planning.total_utility();

  EXPECT_TRUE(planning.Unassign(2, 2));
  EXPECT_EQ(planning.assigned_count(2), 0);
  EXPECT_EQ(planning.total_assignments(), 1);
  EXPECT_DOUBLE_EQ(planning.total_utility(),
                   utility_before - instance.utility(2, 2));
  EXPECT_FALSE(planning.Unassign(2, 2)) << "not assigned anymore";

  // The freed capacity can be reused.
  EXPECT_TRUE(planning.TryAssign(2, 0));
}

TEST(PlanningTest, CheckAssignDoesNotMutate) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  const auto insertion = planning.CheckAssign(2, 2);
  ASSERT_TRUE(insertion.has_value());
  EXPECT_EQ(planning.total_assignments(), 0);
  EXPECT_EQ(planning.assigned_count(2), 0);
}

TEST(PlanningTest, MultiEventScheduleBudgetAccumulates) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  // u2 (user 1, budget 29): v1 round trip is 26.  Appending v4 would add
  // cost(v1,v4)+cost(v4,u2)-cost(v1,u2) = 7+12-13 = 6 -> total 32 > 29.
  ASSERT_TRUE(planning.TryAssign(0, 1));
  EXPECT_FALSE(planning.TryAssign(3, 1));
}

TEST(PlanningTest, ToStringShowsNonEmptySchedules) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 0));
  const std::string text = planning.ToString();
  EXPECT_NE(text.find("S_u0"), std::string::npos);
  EXPECT_EQ(text.find("S_u4"), std::string::npos) << "empty schedules hidden";
}

TEST(ObjectiveTest, ScheduleUtilityHelper) {
  const Instance instance = testing::MakeTable1Instance();
  EXPECT_DOUBLE_EQ(ScheduleUtility(instance, 0, {2, 1}), 0.6 + 0.5);
  EXPECT_DOUBLE_EQ(ScheduleUtility(instance, 0, {}), 0.0);
}

}  // namespace
}  // namespace usep
