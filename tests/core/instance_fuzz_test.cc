// Randomized structural checks of Instance's precomputed tables against
// brute-force recomputation from first principles.

#include <gtest/gtest.h>

#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class InstanceFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {
 protected:
  StatusOr<Instance> Make() const {
    GeneratorConfig config = testing::MediumRandomConfig(std::get<0>(GetParam()));
    config.num_events = 25;
    config.num_users = 10;
    config.conflict_ratio = std::get<1>(GetParam());
    return GenerateSyntheticInstance(config);
  }
};

TEST_P(InstanceFuzzTest, SortedOrderIsAPermutationSortedByEndTime) {
  const StatusOr<Instance> instance = Make();
  ASSERT_TRUE(instance.ok());
  const std::vector<EventId>& sorted = instance->events_by_end_time();
  ASSERT_EQ(sorted.size(), static_cast<size_t>(instance->num_events()));
  std::vector<bool> seen(instance->num_events(), false);
  for (size_t rank = 0; rank < sorted.size(); ++rank) {
    ASSERT_FALSE(seen[sorted[rank]]) << "duplicate in sorted order";
    seen[sorted[rank]] = true;
    EXPECT_EQ(instance->SortedRank(sorted[rank]), static_cast<int>(rank));
    if (rank > 0) {
      EXPECT_LE(instance->event(sorted[rank - 1]).interval.end,
                instance->event(sorted[rank]).interval.end);
    }
  }
}

TEST_P(InstanceFuzzTest, LastChainableRankMatchesBruteForce) {
  const StatusOr<Instance> instance = Make();
  ASSERT_TRUE(instance.ok());
  const std::vector<EventId>& sorted = instance->events_by_end_time();
  for (int i = 0; i < instance->num_events(); ++i) {
    int expected = -1;
    for (int l = 0; l < instance->num_events(); ++l) {
      if (instance->event(sorted[l]).interval.end <=
          instance->event(sorted[i]).interval.start) {
        expected = std::max(expected, l);
      }
    }
    EXPECT_EQ(instance->LastChainableRank(i), expected) << "rank " << i;
  }
}

TEST_P(InstanceFuzzTest, CanFollowMatchesDefinition) {
  const StatusOr<Instance> instance = Make();
  ASSERT_TRUE(instance.ok());
  for (EventId a = 0; a < instance->num_events(); ++a) {
    for (EventId b = 0; b < instance->num_events(); ++b) {
      bool expected =
          a != b &&
          instance->event(a).interval.CanPrecede(instance->event(b).interval);
      if (expected &&
          instance->conflict_policy() == ConflictPolicy::kTravelTimeAware) {
        expected = instance->event(a).interval.end +
                       instance->EventTravelCost(a, b) <=
                   instance->event(b).interval.start;
      }
      EXPECT_EQ(instance->CanFollow(a, b), expected) << a << "->" << b;
      EXPECT_EQ(IsInfiniteCost(instance->TransitionCost(a, b)), !expected);
    }
  }
}

TEST_P(InstanceFuzzTest, ConflictsAreSymmetricAndMatchCanFollow) {
  const StatusOr<Instance> instance = Make();
  ASSERT_TRUE(instance.ok());
  for (EventId a = 0; a < instance->num_events(); ++a) {
    EXPECT_TRUE(instance->ConflictingPair(a, a))
        << "an event always conflicts with itself";
    for (EventId b = a + 1; b < instance->num_events(); ++b) {
      EXPECT_EQ(instance->ConflictingPair(a, b),
                instance->ConflictingPair(b, a));
      EXPECT_EQ(instance->ConflictingPair(a, b),
                !instance->CanFollow(a, b) && !instance->CanFollow(b, a));
    }
  }
}

TEST_P(InstanceFuzzTest, EventCostsMatchTheCostModel) {
  const StatusOr<Instance> instance = Make();
  ASSERT_TRUE(instance.ok());
  const CostModel& model = instance->cost_model();
  for (EventId a = 0; a < instance->num_events(); ++a) {
    for (EventId b = 0; b < instance->num_events(); ++b) {
      EXPECT_EQ(instance->EventTravelCost(a, b), model.EventToEvent(a, b));
    }
    for (UserId u = 0; u < instance->num_users(); ++u) {
      EXPECT_EQ(instance->UserToEventCost(u, a), model.UserToEvent(u, a));
      EXPECT_EQ(instance->EventToUserCost(a, u), model.EventToUser(a, u));
      EXPECT_EQ(instance->RoundTripCost(u, a),
                model.UserToEvent(u, a) + model.EventToUser(a, u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRatios, InstanceFuzzTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 6),
                       ::testing::Values(0.0, 0.3, 0.8)));

// Travel-aware instances exercise the policy branch of the fuzz checks.
class TravelAwareFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TravelAwareFuzzTest, CanFollowMatchesDefinition) {
  GeneratorConfig config = testing::MediumRandomConfig(GetParam());
  config.num_events = 20;
  config.num_users = 5;
  config.conflict_policy = ConflictPolicy::kTravelTimeAware;
  config.grid_extent = 300;  // Distances comparable to time gaps.
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  int gated_by_travel = 0;
  for (EventId a = 0; a < instance->num_events(); ++a) {
    for (EventId b = 0; b < instance->num_events(); ++b) {
      if (a == b) continue;
      const bool time_ok =
          instance->event(a).interval.CanPrecede(instance->event(b).interval);
      const bool travel_ok =
          time_ok && instance->event(a).interval.end +
                             instance->EventTravelCost(a, b) <=
                         instance->event(b).interval.start;
      EXPECT_EQ(instance->CanFollow(a, b), travel_ok);
      if (time_ok && !travel_ok) ++gated_by_travel;
    }
  }
  EXPECT_GT(gated_by_travel, 0)
      << "the test geometry should gate at least one pair by travel time";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TravelAwareFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace usep
