#include "core/planning_stats.h"

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "core/instance_builder.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(PlanningStatsTest, EmptyPlanning) {
  const Instance instance = testing::MakeTable1Instance();
  const Planning planning(instance);
  const PlanningStats stats = ComputePlanningStats(instance, planning);
  EXPECT_EQ(stats.num_users, 5);
  EXPECT_EQ(stats.num_events, 4);
  EXPECT_EQ(stats.users_with_plans, 0);
  EXPECT_EQ(stats.total_assignments, 0);
  EXPECT_DOUBLE_EQ(stats.total_utility, 0.0);
  EXPECT_DOUBLE_EQ(stats.seat_fill_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_schedule_size, 0.0);
  EXPECT_DOUBLE_EQ(stats.utility_gini, 0.0);
}

TEST(PlanningStatsTest, SingleAssignment) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));  // mu = 0.9.
  const PlanningStats stats = ComputePlanningStats(instance, planning);
  EXPECT_EQ(stats.users_with_plans, 1);
  EXPECT_EQ(stats.total_assignments, 1);
  EXPECT_DOUBLE_EQ(stats.total_utility, 0.9);
  EXPECT_DOUBLE_EQ(stats.mean_user_utility, 0.9 / 5);
  EXPECT_DOUBLE_EQ(stats.min_planned_user_utility, 0.9);
  EXPECT_DOUBLE_EQ(stats.max_user_utility, 0.9);
  EXPECT_EQ(stats.max_schedule_size, 1);
  EXPECT_DOUBLE_EQ(stats.mean_schedule_size, 1.0);
  // Seats: min(c_v, |U|) = 1 + 3 + 4 + 2 = 10.
  EXPECT_DOUBLE_EQ(stats.seat_fill_rate, 0.1);
  EXPECT_EQ(stats.events_with_attendees, 1);
  EXPECT_EQ(stats.events_at_capacity, 0);
  // One user has everything: Gini = 1 - 1/n = 0.8 for n = 5.
  EXPECT_NEAR(stats.utility_gini, 0.8, 1e-9);
}

TEST(PlanningStatsTest, BudgetUtilization) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));
  const PlanningStats stats = ComputePlanningStats(instance, planning);
  // u3 at (9,7), v3 at (3,7): round trip 12 of budget 51.
  EXPECT_NEAR(stats.mean_budget_utilization, 12.0 / 51.0, 1e-9);
}

TEST(PlanningStatsTest, EvenUtilitiesHaveZeroGini) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 2);
  builder.AddUser(100);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(0, 1, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {0, 1}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(0, 1));
  const PlanningStats stats = ComputePlanningStats(instance, planning);
  EXPECT_NEAR(stats.utility_gini, 0.0, 1e-9);
  EXPECT_EQ(stats.events_at_capacity, 1);
  EXPECT_DOUBLE_EQ(stats.seat_fill_rate, 1.0);
}

TEST(PlanningStatsTest, AgreesWithPlanningCaches) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(11));
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*instance);
  const PlanningStats stats =
      ComputePlanningStats(*instance, result.planning);
  EXPECT_NEAR(stats.total_utility, result.planning.total_utility(), 1e-9);
  EXPECT_EQ(stats.total_assignments, result.planning.total_assignments());
  EXPECT_GE(stats.utility_gini, 0.0);
  EXPECT_LE(stats.utility_gini, 1.0);
  EXPECT_GE(stats.mean_budget_utilization, 0.0);
  EXPECT_LE(stats.mean_budget_utilization, 1.0 + 1e-9);
}

TEST(PlanningStatsTest, ToStringMentionsHeadlineNumbers) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));
  const std::string text =
      ComputePlanningStats(instance, planning).ToString();
  EXPECT_NE(text.find("Omega=0.90"), std::string::npos);
  EXPECT_NE(text.find("planned_users=1/5"), std::string::npos);
}

TEST(ScheduleSizeHistogramTest, CountsUsersPerSize) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 0));  // u1: v3.
  ASSERT_TRUE(planning.TryAssign(1, 0));  // u1: v3, v2.
  ASSERT_TRUE(planning.TryAssign(2, 2));  // u3: v3.
  const std::vector<int> histogram = ScheduleSizeHistogram(planning);
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 3);
  EXPECT_EQ(histogram[1], 1);
  EXPECT_EQ(histogram[2], 1);
}

TEST(ScheduleSizeHistogramTest, EmptyPlanning) {
  const Instance instance = testing::MakeTable1Instance();
  const Planning planning(instance);
  const std::vector<int> histogram = ScheduleSizeHistogram(planning);
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram[0], 5);
}

}  // namespace
}  // namespace usep
