#include "core/instance.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

InstanceBuilder TwoEventBuilder() {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({20, 30}, 1);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {5, 0}}, {{1, 1}});
  return builder;
}

TEST(InstanceBuilderTest, BuildsValidInstance) {
  StatusOr<Instance> instance = TwoEventBuilder().Build();
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_events(), 2);
  EXPECT_EQ(instance->num_users(), 1);
  EXPECT_DOUBLE_EQ(instance->utility(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(instance->utility(1, 0), 0.0);
}

TEST(InstanceBuilderTest, RejectsEmptyInterval) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.AddEvent({5, 5}, 1);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {5, 0}, {0, 0}},
                          {{1, 1}});
  const StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_FALSE(instance.ok());
  EXPECT_NE(instance.status().message().find("interval"), std::string::npos);
}

TEST(InstanceBuilderTest, RejectsInvertedInterval) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.AddEvent({10, 5}, 1);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {5, 0}, {0, 0}},
                          {{1, 1}});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(InstanceBuilderTest, RejectsNonPositiveCapacity) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.AddEvent({40, 50}, 0);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {5, 0}, {0, 0}},
                          {{1, 1}});
  const StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_FALSE(instance.ok());
  EXPECT_NE(instance.status().message().find("capacity"), std::string::npos);
}

TEST(InstanceBuilderTest, RejectsNegativeBudget) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.AddUser(-1);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {5, 0}},
                          {{1, 1}, {2, 2}});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(InstanceBuilderTest, RejectsMissingCostModel) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(5);
  const StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InstanceBuilderTest, RejectsMismatchedCostModelDimensions) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 1}});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(InstanceBuilderTest, RejectsUtilityOutOfRange) {
  {
    InstanceBuilder builder = TwoEventBuilder();
    builder.SetUtility(0, 0, 1.5);
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    InstanceBuilder builder = TwoEventBuilder();
    builder.SetUtility(1, 0, -0.1);
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
}

TEST(InstanceBuilderTest, RejectsUtilityIndexOutOfRange) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.SetUtility(5, 0, 0.5);
  const StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kOutOfRange);
}

TEST(InstanceBuilderTest, RejectsWrongBulkUtilitySize) {
  InstanceBuilder builder = TwoEventBuilder();
  builder.SetAllUtilities({0.1, 0.2, 0.3});  // Want 2*1 = 2 entries.
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(InstanceBuilderTest, BulkUtilitiesAreRowMajorByEvent) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({20, 30}, 1);
  builder.AddUser(10);
  builder.AddUser(10);
  builder.SetAllUtilities({0.1, 0.2, 0.3, 0.4});
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {1, 0}},
                          {{0, 1}, {1, 1}});
  StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_TRUE(instance.ok());
  EXPECT_DOUBLE_EQ(instance->utility(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(instance->utility(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(instance->utility(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(instance->utility(1, 1), 0.4);
}

TEST(InstanceTest, EventCostsComeFromModel) {
  const Instance instance = *TwoEventBuilder().Build();
  EXPECT_EQ(instance.EventTravelCost(0, 1), 5);
  EXPECT_EQ(instance.UserToEventCost(0, 0), 2);
  EXPECT_EQ(instance.EventToUserCost(1, 0), 5);
  EXPECT_EQ(instance.RoundTripCost(0, 1), 10);
}

TEST(InstanceTest, CanFollowRespectsTimeOrder) {
  const Instance instance = *TwoEventBuilder().Build();
  EXPECT_TRUE(instance.CanFollow(0, 1));
  EXPECT_FALSE(instance.CanFollow(1, 0));
  EXPECT_FALSE(instance.CanFollow(0, 0)) << "an event cannot follow itself";
}

TEST(InstanceTest, TransitionCostInfiniteWhenNotChainable) {
  const Instance instance = *TwoEventBuilder().Build();
  EXPECT_EQ(instance.TransitionCost(0, 1), 5);
  EXPECT_TRUE(IsInfiniteCost(instance.TransitionCost(1, 0)));
}

TEST(InstanceTest, TravelTimeAwarePolicyGatesTightGaps) {
  // Gap of 10 between the events; venues 5 apart (feasible) vs 50 apart
  // (travel cannot make it).
  for (const int64_t distance : {5, 50}) {
    InstanceBuilder builder;
    builder.AddEvent({0, 10}, 1);
    builder.AddEvent({20, 30}, 1);
    builder.AddUser(1000);
    builder.SetUtility(0, 0, 0.5);
    builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {distance, 0}},
                            {{0, 0}});
    builder.SetConflictPolicy(ConflictPolicy::kTravelTimeAware);
    const Instance instance = *std::move(builder).Build();
    EXPECT_EQ(instance.CanFollow(0, 1), distance <= 10) << distance;
    EXPECT_FALSE(instance.CanFollow(1, 0));
    EXPECT_EQ(instance.ConflictingPair(0, 1), distance > 10);
  }
}

TEST(InstanceTest, SortedOrderIsByEndTime) {
  const Instance instance = testing::MakeTable1Instance();
  // Ends: v1=960, v2=1080, v3=840, v4=1140 -> order v3, v1, v2, v4.
  EXPECT_EQ(instance.events_by_end_time(),
            (std::vector<EventId>{2, 0, 1, 3}));
  EXPECT_EQ(instance.SortedRank(2), 0);
  EXPECT_EQ(instance.SortedRank(0), 1);
  EXPECT_EQ(instance.SortedRank(1), 2);
  EXPECT_EQ(instance.SortedRank(3), 3);
}

TEST(InstanceTest, SortedOrderBreaksTiesByStartThenId) {
  InstanceBuilder builder;
  builder.AddEvent({5, 20}, 1);
  builder.AddEvent({0, 20}, 1);
  builder.AddEvent({0, 20}, 1);
  builder.AddUser(10);
  builder.SetUtility(0, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {0, 0}, {0, 0}},
                          {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  EXPECT_EQ(instance.events_by_end_time(), (std::vector<EventId>{1, 2, 0}));
}

TEST(InstanceTest, LastChainableRankMatchesDefinition) {
  const Instance instance = testing::MakeTable1Instance();
  // Sorted: v3 [780,840], v1 [780,960], v2 [900,1080], v4 [1080,1140].
  // l_0: no event ends <= 780 -> -1.
  EXPECT_EQ(instance.LastChainableRank(0), -1);
  // l_1 (v1, starts 780): none end <= 780 -> -1.
  EXPECT_EQ(instance.LastChainableRank(1), -1);
  // l_2 (v2, starts 900): v3 ends 840 <= 900 -> rank 0.
  EXPECT_EQ(instance.LastChainableRank(2), 0);
  // l_3 (v4, starts 1080): v2 ends 1080 -> rank 2.
  EXPECT_EQ(instance.LastChainableRank(3), 2);
}

TEST(InstanceTest, MeasuredConflictRatioOnTable1) {
  const Instance instance = testing::MakeTable1Instance();
  // Conflicting pairs: (v1,v2) and (v1,v3) out of 6.
  EXPECT_TRUE(instance.ConflictingPair(0, 1));
  EXPECT_TRUE(instance.ConflictingPair(0, 2));
  EXPECT_FALSE(instance.ConflictingPair(0, 3));
  EXPECT_FALSE(instance.ConflictingPair(1, 2));
  EXPECT_FALSE(instance.ConflictingPair(1, 3));
  EXPECT_FALSE(instance.ConflictingPair(2, 3));
  EXPECT_NEAR(instance.MeasuredConflictRatio(), 2.0 / 6.0, 1e-12);
}

TEST(InstanceTest, ConflictRatioDegenerateCases) {
  const Instance instance = *TwoEventBuilder().Build();
  EXPECT_EQ(instance.MeasuredConflictRatio(), 0.0);

  InstanceBuilder single;
  single.AddEvent({0, 10}, 1);
  single.AddUser(5);
  single.SetUtility(0, 0, 0.5);
  single.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{0, 0}});
  EXPECT_EQ((*std::move(single).Build()).MeasuredConflictRatio(), 0.0);
}

TEST(InstanceTest, CopyIsIndependentView) {
  const Instance original = testing::MakeTable1Instance();
  const Instance copy = original;  // NOLINT: copy on purpose.
  EXPECT_EQ(copy.num_events(), original.num_events());
  EXPECT_EQ(copy.EventTravelCost(0, 1), original.EventTravelCost(0, 1));
  EXPECT_EQ(copy.events_by_end_time(), original.events_by_end_time());
}

TEST(InstanceTest, DebugSummaryMentionsDimensions) {
  const Instance instance = testing::MakeTable1Instance();
  const std::string summary = instance.DebugSummary();
  EXPECT_NE(summary.find("|V|=4"), std::string::npos);
  EXPECT_NE(summary.find("|U|=5"), std::string::npos);
}

TEST(InstanceTest, ApproxInputBytesIsPositiveAndGrows) {
  const Instance small = *TwoEventBuilder().Build();
  const Instance large = testing::MakeTable1Instance();
  EXPECT_GT(small.ApproxInputBytes(), 0u);
  EXPECT_GT(large.ApproxInputBytes(), small.ApproxInputBytes());
}

}  // namespace
}  // namespace usep
