#include "core/transforms.h"

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "algo/exact.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(RestrictCandidatesTest, ZeroesUtilitiesOutsideCandidateSets) {
  const Instance base = testing::MakeTable1Instance();
  // u1 may only attend v1 and v3; everyone else keeps everything.
  std::vector<std::vector<EventId>> candidates(base.num_users());
  candidates[0] = {0, 2};
  for (UserId u = 1; u < base.num_users(); ++u) {
    for (EventId v = 0; v < base.num_events(); ++v) {
      candidates[u].push_back(v);
    }
  }
  const StatusOr<Instance> restricted = RestrictCandidates(base, candidates);
  ASSERT_TRUE(restricted.ok()) << restricted.status();
  EXPECT_DOUBLE_EQ(restricted->utility(0, 0), base.utility(0, 0));
  EXPECT_DOUBLE_EQ(restricted->utility(2, 0), base.utility(2, 0));
  EXPECT_DOUBLE_EQ(restricted->utility(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(restricted->utility(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(restricted->utility(1, 1), base.utility(1, 1));
}

TEST(RestrictCandidatesTest, PlannersNeverArrangeOutsideCandidates) {
  const Instance base = testing::MakeTable1Instance();
  std::vector<std::vector<EventId>> candidates(base.num_users());
  for (UserId u = 0; u < base.num_users(); ++u) {
    candidates[u] = {static_cast<EventId>(u % base.num_events())};
  }
  const StatusOr<Instance> restricted = RestrictCandidates(base, candidates);
  ASSERT_TRUE(restricted.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*restricted);
  EXPECT_TRUE(ValidatePlanning(*restricted, result.planning).ok());
  for (UserId u = 0; u < restricted->num_users(); ++u) {
    for (const EventId v : result.planning.schedule(u).events()) {
      EXPECT_EQ(v, candidates[u][0]) << "user " << u;
    }
  }
}

TEST(RestrictCandidatesTest, EmptyCandidateSetMeansNoEvents) {
  const Instance base = testing::MakeTable1Instance();
  std::vector<std::vector<EventId>> candidates(base.num_users());
  const StatusOr<Instance> restricted = RestrictCandidates(base, candidates);
  ASSERT_TRUE(restricted.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*restricted);
  EXPECT_EQ(result.planning.total_assignments(), 0);
}

TEST(RestrictCandidatesTest, RejectsBadInput) {
  const Instance base = testing::MakeTable1Instance();
  EXPECT_FALSE(RestrictCandidates(base, {}).ok()) << "wrong user count";
  std::vector<std::vector<EventId>> candidates(base.num_users());
  candidates[0] = {99};
  EXPECT_FALSE(RestrictCandidates(base, candidates).ok()) << "bad event id";
  candidates[0] = {1, 1};
  EXPECT_FALSE(RestrictCandidates(base, candidates).ok()) << "duplicate";
}

TEST(ParticipationFeesTest, FeesReduceWhatABudgetBuys) {
  const Instance base = testing::MakeTable1Instance();
  const PlannerResult before = ExactPlanner().Plan(base);

  // Prohibitive fee on v3 (the most popular event).
  const StatusOr<Instance> priced =
      WithParticipationFees(base, {0, 0, 1000, 0});
  ASSERT_TRUE(priced.ok()) << priced.status();
  const PlannerResult after = ExactPlanner().Plan(*priced);
  EXPECT_LT(after.planning.total_utility(), before.planning.total_utility());
  for (UserId u = 0; u < priced->num_users(); ++u) {
    EXPECT_FALSE(after.planning.schedule(u).Contains(2))
        << "v3 is unaffordable for user " << u;
  }
  EXPECT_TRUE(ValidatePlanning(*priced, after.planning).ok());
}

TEST(ParticipationFeesTest, ZeroFeesPreserveBehaviour) {
  const Instance base = testing::MakeTable1Instance();
  const StatusOr<Instance> same =
      WithParticipationFees(base, {0, 0, 0, 0});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(ExactPlanner().Plan(*same).planning.total_utility(),
                   ExactPlanner().Plan(base).planning.total_utility());
}

TEST(ParticipationFeesTest, ChainedEventsPayEachFeeOnce) {
  // Two disjoint events, fee 5 each; user budget covers travel (8) plus
  // exactly the two fees.
  const Instance base = testing::MakeTinyMatrixInstance();
  const StatusOr<Instance> priced = WithParticipationFees(base, {5, 5});
  ASSERT_TRUE(priced.ok());
  // Base route for user 0 attending both: 2 + 4 + 5 = 11; fees add 10.
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(*priced, 0));
  ASSERT_TRUE(schedule.TryInsert(*priced, 1));
  EXPECT_EQ(schedule.route_cost(), 21);
}

TEST(ParticipationFeesTest, RejectsBadInput) {
  const Instance base = testing::MakeTable1Instance();
  EXPECT_FALSE(WithParticipationFees(base, {1, 2}).ok()) << "wrong count";
  EXPECT_FALSE(WithParticipationFees(base, {0, 0, -1, 0}).ok());
}

TEST(SelectUsersTest, KeepsSelectedUsersWithRenumbering) {
  const Instance base = testing::MakeTable1Instance();
  const StatusOr<Instance> subset = SelectUsers(base, {2, 0});
  ASSERT_TRUE(subset.ok()) << subset.status();
  EXPECT_EQ(subset->num_users(), 2);
  EXPECT_EQ(subset->num_events(), base.num_events());
  EXPECT_EQ(subset->user(0).name, "u3");
  EXPECT_EQ(subset->user(1).name, "u1");
  EXPECT_DOUBLE_EQ(subset->utility(2, 0), base.utility(2, 2));
  EXPECT_EQ(subset->UserToEventCost(0, 1), base.UserToEventCost(2, 1));
  EXPECT_EQ(subset->EventTravelCost(0, 1), base.EventTravelCost(0, 1));
}

TEST(SelectUsersTest, PlannerRunsOnSubset) {
  const StatusOr<Instance> base =
      GenerateSyntheticInstance(testing::MediumRandomConfig(5));
  ASSERT_TRUE(base.ok());
  std::vector<UserId> half;
  for (UserId u = 0; u < base->num_users(); u += 2) half.push_back(u);
  const StatusOr<Instance> subset = SelectUsers(*base, half);
  ASSERT_TRUE(subset.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*subset);
  EXPECT_TRUE(ValidatePlanning(*subset, result.planning).ok());
}

TEST(SelectUsersTest, RejectsBadInput) {
  const Instance base = testing::MakeTable1Instance();
  EXPECT_FALSE(SelectUsers(base, {0, 0}).ok());
  EXPECT_FALSE(SelectUsers(base, {-1}).ok());
  EXPECT_FALSE(SelectUsers(base, {99}).ok());
}

TEST(SelectEventsTest, KeepsSelectedEventsWithRenumbering) {
  const Instance base = testing::MakeTable1Instance();
  const StatusOr<Instance> subset = SelectEvents(base, {3, 1});
  ASSERT_TRUE(subset.ok()) << subset.status();
  EXPECT_EQ(subset->num_events(), 2);
  EXPECT_EQ(subset->event(0).name, "v4");
  EXPECT_EQ(subset->event(1).name, "v2");
  EXPECT_DOUBLE_EQ(subset->utility(0, 1), base.utility(3, 1));
  EXPECT_EQ(subset->EventTravelCost(0, 1), base.EventTravelCost(3, 1));
  // v2 [900,1080] precedes v4 [1080,1140].
  EXPECT_TRUE(subset->CanFollow(1, 0));
  EXPECT_FALSE(subset->CanFollow(0, 1));
}

TEST(SelectEventsTest, EmptySelectionGivesEventlessInstance) {
  const Instance base = testing::MakeTable1Instance();
  const StatusOr<Instance> subset = SelectEvents(base, {});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->num_events(), 0);
  EXPECT_EQ(subset->num_users(), base.num_users());
}

TEST(TransformsComposability, RestrictedFeeChargedSubset) {
  // Transforms compose: select events, add fees, restrict candidates.
  const Instance base = testing::MakeTable1Instance();
  const StatusOr<Instance> events = SelectEvents(base, {0, 1, 2});
  ASSERT_TRUE(events.ok());
  const StatusOr<Instance> priced = WithParticipationFees(*events, {1, 2, 3});
  ASSERT_TRUE(priced.ok());
  std::vector<std::vector<EventId>> candidates(priced->num_users(),
                                               std::vector<EventId>{0, 2});
  const StatusOr<Instance> final_instance =
      RestrictCandidates(*priced, candidates);
  ASSERT_TRUE(final_instance.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*final_instance);
  EXPECT_TRUE(ValidatePlanning(*final_instance, result.planning).ok());
  for (UserId u = 0; u < final_instance->num_users(); ++u) {
    EXPECT_FALSE(result.planning.schedule(u).Contains(1));
  }
}

}  // namespace
}  // namespace usep
