#include "core/time_interval.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(TimeIntervalTest, CanPrecedeStrictGap) {
  const TimeInterval a{0, 10};
  const TimeInterval b{20, 30};
  EXPECT_TRUE(a.CanPrecede(b));
  EXPECT_FALSE(b.CanPrecede(a));
}

TEST(TimeIntervalTest, TouchingBoundaryIsAllowed) {
  // Definition 1 uses t2 <= t1: back-to-back events are feasible.
  const TimeInterval a{0, 10};
  const TimeInterval b{10, 20};
  EXPECT_TRUE(a.CanPrecede(b));
  EXPECT_FALSE(b.CanPrecede(a));
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(TimeIntervalTest, OverlapIsSymmetric) {
  const TimeInterval a{0, 15};
  const TimeInterval b{10, 20};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.CanPrecede(b));
  EXPECT_FALSE(b.CanPrecede(a));
}

TEST(TimeIntervalTest, ContainedIntervalOverlaps) {
  const TimeInterval outer{0, 100};
  const TimeInterval inner{40, 60};
  EXPECT_TRUE(outer.Overlaps(inner));
  EXPECT_TRUE(inner.Overlaps(outer));
}

TEST(TimeIntervalTest, IdenticalIntervalsOverlap) {
  const TimeInterval a{5, 10};
  EXPECT_TRUE(a.Overlaps(a));
  EXPECT_FALSE(a.CanPrecede(a));
}

TEST(TimeIntervalTest, Duration) {
  EXPECT_EQ((TimeInterval{780, 960}).duration(), 180);
}

TEST(TimeIntervalTest, EqualityAndToString) {
  EXPECT_EQ((TimeInterval{1, 2}), (TimeInterval{1, 2}));
  EXPECT_FALSE((TimeInterval{1, 2}) == (TimeInterval{1, 3}));
  EXPECT_EQ((TimeInterval{780, 960}).ToString(), "[780, 960]");
}

}  // namespace
}  // namespace usep
