// Randomized stress of Schedule's incremental bookkeeping: arbitrary
// interleavings of insertions and removals must keep the cached route cost
// equal to a from-scratch recomputation, keep events in time order, and
// keep neighbors chainable.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/schedule.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

void ExpectScheduleInvariants(const Instance& instance,
                              const Schedule& schedule) {
  // Cached cost matches recomputation.
  EXPECT_EQ(schedule.route_cost(), schedule.ComputeRouteCost(instance));
  // Time order and chainability.
  for (int i = 0; i + 1 < schedule.size(); ++i) {
    const EventId a = schedule.events()[i];
    const EventId b = schedule.events()[i + 1];
    EXPECT_TRUE(instance.CanFollow(a, b));
    EXPECT_LT(instance.SortedRank(a), instance.SortedRank(b));
  }
  // No duplicates.
  std::set<EventId> unique(schedule.events().begin(),
                           schedule.events().end());
  EXPECT_EQ(static_cast<int>(unique.size()), schedule.size());
}

class ScheduleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleFuzzTest, RandomInsertRemoveKeepsInvariants) {
  GeneratorConfig config = testing::MediumRandomConfig(GetParam());
  config.num_events = 30;
  config.num_users = 4;
  config.conflict_ratio = 0.4;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  Rng rng(GetParam() * 7919 + 13);
  for (UserId u = 0; u < instance->num_users(); ++u) {
    Schedule schedule(u);
    for (int step = 0; step < 300; ++step) {
      const EventId v =
          static_cast<EventId>(rng.UniformInt(0, instance->num_events() - 1));
      if (rng.Bernoulli(0.65)) {
        const bool inserted = schedule.TryInsert(*instance, v);
        if (inserted) {
          EXPECT_TRUE(schedule.Contains(v));
        }
      } else if (!schedule.empty()) {
        if (rng.Bernoulli(0.5)) {
          schedule.Remove(*instance, v);
        } else {
          schedule.RemoveAt(
              *instance,
              static_cast<int>(rng.UniformInt(0, schedule.size() - 1)));
        }
      }
      ExpectScheduleInvariants(*instance, schedule);
    }
  }
}

TEST_P(ScheduleFuzzTest, InsertionOrderDoesNotMatter) {
  // Any permutation of a feasible event set builds the same schedule.
  GeneratorConfig config = testing::MediumRandomConfig(GetParam() + 500);
  config.num_events = 12;
  config.num_users = 2;
  config.conflict_ratio = 0.0;  // All disjoint: any subset is time-feasible.
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  std::vector<EventId> events(instance->num_events());
  for (EventId v = 0; v < instance->num_events(); ++v) events[v] = v;

  Schedule reference(0);
  for (const EventId v : events) {
    ASSERT_TRUE(reference.TryInsert(*instance, v));
  }

  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<EventId> shuffled = events;
    for (int i = static_cast<int>(shuffled.size()) - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.UniformInt(0, i)]);
    }
    Schedule schedule(0);
    for (const EventId v : shuffled) {
      ASSERT_TRUE(schedule.TryInsert(*instance, v));
    }
    EXPECT_EQ(schedule.events(), reference.events());
    EXPECT_EQ(schedule.route_cost(), reference.route_cost());
  }
}

TEST_P(ScheduleFuzzTest, IncCostsAreNonNegativeUnderMetricCosts) {
  // Triangle inequality => Equation (3) can never be negative.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 900));
  ASSERT_TRUE(instance.ok());
  Rng rng(GetParam() + 1);
  Schedule schedule(0);
  for (int step = 0; step < 200; ++step) {
    const EventId v =
        static_cast<EventId>(rng.UniformInt(0, instance->num_events() - 1));
    const auto insertion = schedule.FindInsertion(*instance, v);
    if (insertion.has_value()) {
      EXPECT_GE(insertion->inc_cost, 0) << "event " << v;
      if (rng.Bernoulli(0.5) && !schedule.Contains(v)) {
        schedule.Insert(*insertion, v);
      }
    }
  }
}

TEST_P(ScheduleFuzzTest, RemoveAtSpliceDeltaIsExactAtEveryPosition) {
  // Regression for the O(1) RemoveAt: grow random schedules, then remove at
  // EVERY position (front / interior / back / singleton are all hit) and
  // compare the incremental route cost against a from-scratch recomputation.
  GeneratorConfig config = testing::MediumRandomConfig(GetParam() + 300);
  config.num_events = 24;
  config.conflict_ratio = 0.2;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  Rng rng(GetParam() * 104729 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    Schedule schedule(0);
    for (int step = 0; step < 40 && schedule.size() < 8; ++step) {
      schedule.TryInsert(
          *instance,
          static_cast<EventId>(rng.UniformInt(0, instance->num_events() - 1)));
    }
    for (int position = 0; position < schedule.size(); ++position) {
      Schedule copy = schedule;
      copy.RemoveAt(*instance, position);
      EXPECT_EQ(copy.route_cost(), copy.ComputeRouteCost(*instance))
          << "position " << position << " of " << schedule.ToString();
    }
    // And drain one copy to empty through random positions.
    Schedule drain = schedule;
    while (!drain.empty()) {
      drain.RemoveAt(*instance,
                     static_cast<int>(rng.UniformInt(0, drain.size() - 1)));
      EXPECT_EQ(drain.route_cost(), drain.ComputeRouteCost(*instance));
    }
    EXPECT_EQ(drain.route_cost(), 0);
  }
}

TEST_P(ScheduleFuzzTest, EpochAdvancesOnEveryMutation) {
  // The candidate index's memo slots are guarded by this counter: any
  // mutation must change it, and reads must not.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 700));
  ASSERT_TRUE(instance.ok());
  Rng rng(GetParam() + 42);
  Schedule schedule(0);
  EXPECT_EQ(schedule.epoch(), 1u) << "epoch 0 is reserved for 'never cached'";
  uint64_t last = schedule.epoch();
  for (int step = 0; step < 200; ++step) {
    const EventId v =
        static_cast<EventId>(rng.UniformInt(0, instance->num_events() - 1));
    // Reads leave the epoch alone.
    schedule.FindInsertion(*instance, v);
    schedule.Contains(v);
    EXPECT_EQ(schedule.epoch(), last);
    bool mutated = false;
    if (rng.Bernoulli(0.6)) {
      mutated = schedule.TryInsert(*instance, v);
    } else if (!schedule.empty()) {
      schedule.RemoveAt(
          *instance, static_cast<int>(rng.UniformInt(0, schedule.size() - 1)));
      mutated = true;
    }
    if (mutated) {
      EXPECT_GT(schedule.epoch(), last);
      last = schedule.epoch();
    } else {
      EXPECT_EQ(schedule.epoch(), last);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace usep
