#include "core/schedule.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/instance_builder.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Three disjoint events on a line, one user at the origin.
// Locations: e0 at x=2, e1 at x=6, e2 at x=10; user at x=0.
Instance MakeLineInstance(Cost budget = 1000) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 3);
  builder.AddEvent({20, 30}, 3);
  builder.AddEvent({40, 50}, 3);
  builder.AddUser(budget);
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(1, 0, 0.5);
  builder.SetUtility(2, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan,
                          {{2, 0}, {6, 0}, {10, 0}}, {{0, 0}});
  return *std::move(builder).Build();
}

TEST(ScheduleTest, EmptyScheduleHasZeroCost) {
  const Schedule schedule(0);
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.route_cost(), 0);
  EXPECT_EQ(schedule.size(), 0);
}

TEST(ScheduleTest, FirstInsertionCostsRoundTrip) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  const auto insertion = schedule.FindInsertion(instance, 1);
  ASSERT_TRUE(insertion.has_value());
  EXPECT_EQ(insertion->position, 0);
  EXPECT_EQ(insertion->inc_cost, 12);  // 6 out + 6 back.
  schedule.Insert(*insertion, 1);
  EXPECT_EQ(schedule.route_cost(), 12);
  EXPECT_EQ(schedule.events(), (std::vector<EventId>{1}));
}

TEST(ScheduleTest, PrependUsesHeadFormula) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 1));  // Route: 0->6->0 = 12.
  // Inserting e0 (x=2) before e1: cost(u,e0) + cost(e0,e1) - cost(u,e1)
  // = 2 + 4 - 6 = 0 extra on the way out.
  const auto insertion = schedule.FindInsertion(instance, 0);
  ASSERT_TRUE(insertion.has_value());
  EXPECT_EQ(insertion->position, 0);
  EXPECT_EQ(insertion->inc_cost, 0);
  schedule.Insert(*insertion, 0);
  EXPECT_EQ(schedule.events(), (std::vector<EventId>{0, 1}));
  EXPECT_EQ(schedule.route_cost(), 12);
  EXPECT_EQ(schedule.ComputeRouteCost(instance), 12);
}

TEST(ScheduleTest, AppendUsesTailFormula) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));  // Route 0->2->0 = 4.
  // Appending e2 (x=10): cost(e0,e2) + cost(e2,u) - cost(e0,u)
  // = 8 + 10 - 2 = 16.
  const auto insertion = schedule.FindInsertion(instance, 2);
  ASSERT_TRUE(insertion.has_value());
  EXPECT_EQ(insertion->position, 1);
  EXPECT_EQ(insertion->inc_cost, 16);
  schedule.Insert(*insertion, 2);
  EXPECT_EQ(schedule.route_cost(), 20);
  EXPECT_EQ(schedule.ComputeRouteCost(instance), 20);
}

TEST(ScheduleTest, MiddleInsertionUsesDetourFormula) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  // Inserting e1 between e0 and e2: 4 + 4 - 8 = 0 (it is on the way).
  const auto insertion = schedule.FindInsertion(instance, 1);
  ASSERT_TRUE(insertion.has_value());
  EXPECT_EQ(insertion->position, 1);
  EXPECT_EQ(insertion->inc_cost, 0);
  schedule.Insert(*insertion, 1);
  EXPECT_EQ(schedule.events(), (std::vector<EventId>{0, 1, 2}));
  EXPECT_EQ(schedule.route_cost(), schedule.ComputeRouteCost(instance));
}

TEST(ScheduleTest, DetourOffTheLineCostsExtra) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({20, 30}, 1);
  builder.AddEvent({40, 50}, 1);
  builder.AddUser(1000);
  for (EventId v = 0; v < 3; ++v) builder.SetUtility(v, 0, 0.5);
  // e1 sits 5 off the line between e0 and e2.
  builder.SetMetricLayout(MetricKind::kManhattan,
                          {{2, 0}, {6, 5}, {10, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  const auto insertion = schedule.FindInsertion(instance, 1);
  ASSERT_TRUE(insertion.has_value());
  // cost(e0,e1)=9, cost(e1,e2)=9, cost(e0,e2)=8 -> inc = 10.
  EXPECT_EQ(insertion->inc_cost, 10);
}

TEST(ScheduleTest, OverlappingEventHasNoInsertion) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({5, 15}, 1);  // Overlaps e0.
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(1, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {1, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  EXPECT_FALSE(schedule.FindInsertion(instance, 1).has_value());
  EXPECT_FALSE(schedule.TryInsert(instance, 1));
}

TEST(ScheduleTest, DuplicateInsertIsRejectedByTimeConflict) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 1));
  EXPECT_FALSE(schedule.TryInsert(instance, 1));
}

TEST(ScheduleTest, TravelAwareInsertionRejectsTightGap) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({20, 30}, 1);
  builder.AddUser(1000);
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(1, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {50, 0}}, {{0, 0}});
  builder.SetConflictPolicy(ConflictPolicy::kTravelTimeAware);
  const Instance instance = *std::move(builder).Build();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  // 50 distance into a 10-minute gap: infeasible under the policy.
  EXPECT_FALSE(schedule.TryInsert(instance, 1));
}

TEST(ScheduleTest, ContainsFindsArrangedEvents) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  EXPECT_TRUE(schedule.Contains(2));
  EXPECT_FALSE(schedule.Contains(0));
}

TEST(ScheduleTest, RemoveRestoresRouteCost) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.TryInsert(instance, 1));
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  EXPECT_EQ(schedule.route_cost(), 20);  // 0->2->6->10->0.

  EXPECT_TRUE(schedule.Remove(instance, 1));
  EXPECT_EQ(schedule.events(), (std::vector<EventId>{0, 2}));
  EXPECT_EQ(schedule.route_cost(), 20);  // e1 was on the way.

  EXPECT_TRUE(schedule.Remove(instance, 2));
  EXPECT_EQ(schedule.route_cost(), 4);  // Only e0 remains.

  EXPECT_FALSE(schedule.Remove(instance, 2)) << "already removed";
}

TEST(ScheduleTest, RemoveLastEventGivesEmptySchedule) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.Remove(instance, 0));
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.route_cost(), 0);
}

TEST(ScheduleTest, TotalUtilitySumsArrangedEvents) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  EXPECT_DOUBLE_EQ(schedule.TotalUtility(instance), 1.0);
}

TEST(ScheduleTest, InsertionKeepsTimeOrderRegardlessOfInsertSequence) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 2));
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  ASSERT_TRUE(schedule.TryInsert(instance, 1));
  EXPECT_EQ(schedule.events(), (std::vector<EventId>{0, 1, 2}));
}

// Failpoint: "schedule.remove_at" swaps the Equation (3) splice delta for a
// full route recompute.  The two paths must be observationally identical —
// same surviving events, same route cost, same epoch bump — at every
// removal position including the singleton collapse to empty.
TEST(ScheduleFailpointTest, RemoveAtRecomputePathMatchesSpliceDelta) {
  const Instance instance = MakeLineInstance();
  for (int position = 0; position < 3; ++position) {
    Schedule incremental(0);
    Schedule recomputed(0);
    for (const EventId v : {0, 1, 2}) {
      ASSERT_TRUE(incremental.TryInsert(instance, v));
      ASSERT_TRUE(recomputed.TryInsert(instance, v));
    }

    incremental.RemoveAt(instance, position);
    const uint64_t epoch_before = recomputed.epoch();
    {
      failpoint::ScopedArm arm("schedule.remove_at");
      recomputed.RemoveAt(instance, position);
      EXPECT_EQ(arm.hit_count(), 1);
    }

    EXPECT_EQ(recomputed.events(), incremental.events())
        << "position " << position;
    EXPECT_EQ(recomputed.route_cost(), incremental.route_cost())
        << "position " << position;
    EXPECT_EQ(recomputed.route_cost(), recomputed.ComputeRouteCost(instance))
        << "position " << position;
    EXPECT_EQ(recomputed.epoch(), epoch_before + 1) << "position " << position;
  }

  // Singleton removal: both paths collapse to the empty zero-cost schedule.
  Schedule singleton(0);
  ASSERT_TRUE(singleton.TryInsert(instance, 1));
  {
    failpoint::ScopedArm arm("schedule.remove_at");
    singleton.RemoveAt(instance, 0);
  }
  EXPECT_TRUE(singleton.empty());
  EXPECT_EQ(singleton.route_cost(), 0);
}

TEST(ScheduleTest, ToStringListsEvents) {
  const Instance instance = MakeLineInstance();
  Schedule schedule(0);
  ASSERT_TRUE(schedule.TryInsert(instance, 0));
  const std::string text = schedule.ToString();
  EXPECT_NE(text.find("v0"), std::string::npos);
  EXPECT_NE(text.find("route cost"), std::string::npos);
}

}  // namespace
}  // namespace usep
