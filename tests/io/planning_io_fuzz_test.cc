// Malformed-input hardening for the planning serialization: every corrupted,
// truncated, or hostile input must come back as a Status error — never a
// crash, hang, or silently-invalid Planning.  Mirrors instance_fuzz_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "algo/degreedy.h"
#include "common/rng.h"
#include "core/validation.h"
#include "io/planning_io.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

Instance FuzzInstance() { return testing::MakeTable1Instance(); }

Planning SomeRealPlanning(const Instance& instance) {
  PlannerResult result = DeGreedyPlanner().Plan(instance);
  EXPECT_GT(result.planning.total_assignments(), 0);
  return std::move(result.planning);
}

TEST(PlanningIoFuzzTest, RoundTripSurvives) {
  const Instance instance = FuzzInstance();
  const Planning planning = SomeRealPlanning(instance);
  const StatusOr<Planning> restored =
      DeserializePlanning(instance, SerializePlanning(planning));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total_assignments(), planning.total_assignments());
  EXPECT_TRUE(ValidatePlanning(instance, *restored).ok());
}

TEST(PlanningIoFuzzTest, EveryTruncationErrorsOut) {
  const Instance instance = FuzzInstance();
  const std::string full = SerializePlanning(SomeRealPlanning(instance));
  // Stop one short of cutting only the final newline: "...end" without it is
  // still a complete document (getline does not require a trailing '\n').
  for (size_t cut = 0; cut + 1 < full.size(); ++cut) {
    const std::string truncated = full.substr(0, cut);
    const StatusOr<Planning> parsed =
        DeserializePlanning(instance, truncated);
    // A strict prefix lost the "end" marker (or worse), so it must be
    // rejected — and with a parse error, not a crash.
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << cut << " accepted";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
  EXPECT_TRUE(
      DeserializePlanning(instance, full.substr(0, full.size() - 1)).ok());
}

TEST(PlanningIoFuzzTest, OutOfRangeEventIdIsRejected) {
  const Instance instance = FuzzInstance();
  const StatusOr<Planning> parsed = DeserializePlanning(
      instance, "USEP-PLANNING 1\ns 0 : 999\nend\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().ToString().find("out of range"),
            std::string::npos);
}

TEST(PlanningIoFuzzTest, NegativeEventIdIsRejected) {
  const Instance instance = FuzzInstance();
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 0 : -1\nend\n").ok());
}

TEST(PlanningIoFuzzTest, OutOfRangeUserIdIsRejected) {
  const Instance instance = FuzzInstance();
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 99 : 0\nend\n").ok());
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns -2 : 0\nend\n").ok());
}

TEST(PlanningIoFuzzTest, BadHeaderIsRejected) {
  const Instance instance = FuzzInstance();
  EXPECT_FALSE(DeserializePlanning(instance, "").ok());
  EXPECT_FALSE(DeserializePlanning(instance, "\n").ok());
  EXPECT_FALSE(DeserializePlanning(instance, "GARBAGE 1\nend\n").ok());
  EXPECT_FALSE(DeserializePlanning(instance, "USEP-PLANNING 2\nend\n").ok());
  EXPECT_FALSE(DeserializePlanning(instance, "USEP-PLANNING\nend\n").ok());
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-INSTANCE 1\nend\n").ok());
}

TEST(PlanningIoFuzzTest, MalformedScheduleLinesAreRejected) {
  const Instance instance = FuzzInstance();
  const char* bad_bodies[] = {
      "s 0 0\nend\n",           // Missing the colon.
      "s : 0\nend\n",           // Missing the user.
      "x 0 : 0\nend\n",         // Unknown tag.
      "s 0 : zero\nend\n",      // Non-numeric event id.
      "s 0 : 0 banana\nend\n",  // Trailing junk after valid ids.
      "s 0 : 0 0\nend\n",       // Duplicate assignment violates constraints.
  };
  for (const char* body : bad_bodies) {
    const std::string text = std::string("USEP-PLANNING 1\n") + body;
    const StatusOr<Planning> parsed = DeserializePlanning(instance, text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << body;
  }
}

TEST(PlanningIoFuzzTest, MissingEndMarkerIsRejected) {
  const Instance instance = FuzzInstance();
  EXPECT_FALSE(DeserializePlanning(instance, "USEP-PLANNING 1\n").ok());
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 0 : 1\n").ok());
}

TEST(PlanningIoFuzzTest, ConstraintViolatingAssignmentsAreRejected) {
  const Instance instance = FuzzInstance();
  // Event 0 has capacity 1 in Table 1: two takers must fail on the second.
  const StatusOr<Planning> parsed = DeserializePlanning(
      instance, "USEP-PLANNING 1\ns 0 : 0\ns 1 : 0\nend\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("violates"), std::string::npos);
}

TEST(PlanningIoFuzzTest, RandomByteMutationsNeverCrashTheParser) {
  const Instance instance = FuzzInstance();
  const std::string full = SerializePlanning(SomeRealPlanning(instance));
  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    // Either outcome is fine; what matters is that the parser survives and
    // anything it does accept passes independent validation.
    const StatusOr<Planning> parsed = DeserializePlanning(instance, mutated);
    if (parsed.ok()) {
      EXPECT_TRUE(ValidatePlanning(instance, *parsed).ok())
          << "parser accepted an invalid planning, trial " << trial;
    }
  }
}

TEST(PlanningIoFuzzTest, RandomGarbageNeverCrashesTheParser) {
  const Instance instance = FuzzInstance();
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformInt(0, 200));
    garbage.reserve(length);
    for (int i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const StatusOr<Planning> parsed = DeserializePlanning(instance, garbage);
    if (parsed.ok()) {
      EXPECT_TRUE(ValidatePlanning(instance, *parsed).ok());
    }
  }
}

TEST(PlanningIoFuzzTest, MissingFileIsAnIoError) {
  const Instance instance = FuzzInstance();
  const StatusOr<Planning> parsed =
      ReadPlanningFile(instance, "/nonexistent/usep/planning.file");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace usep
