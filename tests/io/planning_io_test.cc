#include "io/planning_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(PlanningIoTest, RoundTripsSimplePlanning) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 0));
  ASSERT_TRUE(planning.TryAssign(1, 0));
  ASSERT_TRUE(planning.TryAssign(2, 2));

  const std::string text = SerializePlanning(planning);
  const StatusOr<Planning> parsed = DeserializePlanning(instance, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->total_utility(), planning.total_utility());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    EXPECT_EQ(parsed->schedule(u).events(), planning.schedule(u).events());
  }
}

TEST(PlanningIoTest, EmptyPlanningRoundTrips) {
  const Instance instance = testing::MakeTable1Instance();
  const Planning planning(instance);
  const StatusOr<Planning> parsed =
      DeserializePlanning(instance, SerializePlanning(planning));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->total_assignments(), 0);
}

TEST(PlanningIoTest, PlannerOutputRoundTrips) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(777));
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*instance);
  const StatusOr<Planning> parsed =
      DeserializePlanning(*instance, SerializePlanning(result.planning));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->total_utility(),
                   result.planning.total_utility());
  EXPECT_TRUE(ValidatePlanning(*instance, *parsed).ok());
}

TEST(PlanningIoTest, FileRoundTrip) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));
  const std::string path = ::testing::TempDir() + "/usep_planning.txt";
  ASSERT_TRUE(WritePlanningFile(planning, path).ok());
  const StatusOr<Planning> parsed = ReadPlanningFile(instance, path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->schedule(2).Contains(2));
  std::remove(path.c_str());
}

TEST(PlanningIoTest, RejectsInfeasibleAssignments) {
  const Instance instance = testing::MakeTable1Instance();
  // v1 (event 0) has capacity 1; assigning it to two users must fail.
  const std::string text =
      "USEP-PLANNING 1\n"
      "s 1 : 0\n"
      "s 2 : 0\n"
      "end\n";
  const StatusOr<Planning> parsed = DeserializePlanning(instance, text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("violates"), std::string::npos);
}

TEST(PlanningIoTest, RejectsOutOfRangeIds) {
  const Instance instance = testing::MakeTable1Instance();
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 0 : 99\nend\n").ok());
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 99 : 0\nend\n").ok());
}

TEST(PlanningIoTest, RejectsMalformedInput) {
  const Instance instance = testing::MakeTable1Instance();
  EXPECT_FALSE(DeserializePlanning(instance, "").ok());
  EXPECT_FALSE(DeserializePlanning(instance, "BANANA 1\nend\n").ok());
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\ns 0 : 1\n").ok())
      << "missing end";
  EXPECT_FALSE(
      DeserializePlanning(instance, "USEP-PLANNING 1\nx 0 : 1\nend\n").ok());
}

TEST(PlanningIoTest, IgnoresCommentsAndBlankLines) {
  const Instance instance = testing::MakeTable1Instance();
  const std::string text =
      "USEP-PLANNING 1\n"
      "# best planning ever\n"
      "\n"
      "s 2 : 2\n"
      "end\n";
  const StatusOr<Planning> parsed = DeserializePlanning(instance, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->schedule(2).Contains(2));
}

}  // namespace
}  // namespace usep
