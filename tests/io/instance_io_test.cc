#include "io/instance_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

void ExpectInstancesEquivalent(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_events(), b.num_events());
  ASSERT_EQ(a.num_users(), b.num_users());
  EXPECT_EQ(a.conflict_policy(), b.conflict_policy());
  for (EventId v = 0; v < a.num_events(); ++v) {
    EXPECT_EQ(a.event(v).interval, b.event(v).interval);
    EXPECT_EQ(a.event(v).capacity, b.event(v).capacity);
    EXPECT_EQ(a.event(v).name, b.event(v).name);
    for (EventId w = 0; w < a.num_events(); ++w) {
      EXPECT_EQ(a.EventTravelCost(v, w), b.EventTravelCost(v, w));
      EXPECT_EQ(a.CanFollow(v, w), b.CanFollow(v, w));
    }
    for (UserId u = 0; u < a.num_users(); ++u) {
      EXPECT_DOUBLE_EQ(a.utility(v, u), b.utility(v, u));
      EXPECT_EQ(a.UserToEventCost(u, v), b.UserToEventCost(u, v));
      EXPECT_EQ(a.EventToUserCost(v, u), b.EventToUserCost(v, u));
    }
  }
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.user(u).budget, b.user(u).budget);
    EXPECT_EQ(a.user(u).name, b.user(u).name);
  }
}

TEST(InstanceIoTest, MetricInstanceRoundTrips) {
  const Instance original = testing::MakeTable1Instance();
  const std::string text = SerializeInstance(original);
  const StatusOr<Instance> parsed = DeserializeInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectInstancesEquivalent(original, *parsed);
}

TEST(InstanceIoTest, MatrixInstanceRoundTrips) {
  const Instance original = testing::MakeTinyMatrixInstance();
  const std::string text = SerializeInstance(original);
  EXPECT_NE(text.find("cost matrix"), std::string::npos);
  const StatusOr<Instance> parsed = DeserializeInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectInstancesEquivalent(original, *parsed);
}

TEST(InstanceIoTest, GeneratedInstanceRoundTrips) {
  const StatusOr<Instance> original =
      GenerateSyntheticInstance(testing::MediumRandomConfig(321));
  ASSERT_TRUE(original.ok());
  const StatusOr<Instance> parsed =
      DeserializeInstance(SerializeInstance(*original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectInstancesEquivalent(*original, *parsed);
}

TEST(InstanceIoTest, TravelAwarePolicyRoundTrips) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(10);
  builder.SetUtility(0, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 1}});
  builder.SetConflictPolicy(ConflictPolicy::kTravelTimeAware);
  const Instance original = *std::move(builder).Build();
  const StatusOr<Instance> parsed =
      DeserializeInstance(SerializeInstance(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->conflict_policy(), ConflictPolicy::kTravelTimeAware);
}

TEST(InstanceIoTest, FileRoundTrip) {
  const Instance original = testing::MakeTable1Instance();
  const std::string path = ::testing::TempDir() + "/usep_instance.txt";
  ASSERT_TRUE(WriteInstanceFile(original, path).ok());
  const StatusOr<Instance> parsed = ReadInstanceFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectInstancesEquivalent(original, *parsed);
  std::remove(path.c_str());
}

TEST(InstanceIoTest, ReadMissingFileFails) {
  const StatusOr<Instance> parsed =
      ReadInstanceFile("/nonexistent/usep_instance.txt");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(InstanceIoTest, CommentsAndBlankLinesIgnored) {
  const Instance original = testing::MakeTinyMatrixInstance();
  std::string text = SerializeInstance(original);
  text.insert(text.find('\n') + 1, "# a comment\n\n   \n");
  const StatusOr<Instance> parsed = DeserializeInstance(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
}

TEST(InstanceIoTest, RejectsBadHeader) {
  EXPECT_FALSE(DeserializeInstance("NOT-USEP 1\nend\n").ok());
  EXPECT_FALSE(DeserializeInstance("USEP-INSTANCE 99\nend\n").ok());
  EXPECT_FALSE(DeserializeInstance("").ok());
}

TEST(InstanceIoTest, RejectsTruncatedInput) {
  const std::string text = SerializeInstance(testing::MakeTable1Instance());
  // Chop off the trailing "end\n" plus some utilities.
  const std::string truncated = text.substr(0, text.size() * 2 / 3);
  EXPECT_FALSE(DeserializeInstance(truncated).ok());
}

TEST(InstanceIoTest, RejectsUnknownPolicy) {
  std::string text = SerializeInstance(testing::MakeTinyMatrixInstance());
  const std::string needle = "policy time_overlap_only";
  text.replace(text.find(needle), needle.size(), "policy mystery_policy");
  EXPECT_FALSE(DeserializeInstance(text).ok());
}

TEST(InstanceIoTest, RejectsInvalidUtilityValues) {
  const Instance original = testing::MakeTinyMatrixInstance();
  std::string text = SerializeInstance(original);
  // Inject an out-of-range utility (the builder re-validates on load).
  const std::string needle = "utilities 3";
  ASSERT_NE(text.find(needle), std::string::npos);
  text.replace(text.find("0 0 0.9"), 7, "0 0 9.9");
  EXPECT_FALSE(DeserializeInstance(text).ok());
}

TEST(InstanceIoTest, PreservesEventAndUserNames) {
  const Instance original = testing::MakeTinyMatrixInstance();
  const StatusOr<Instance> parsed =
      DeserializeInstance(SerializeInstance(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->event(0).name, "first");
  EXPECT_EQ(parsed->user(1).name, "far");
}

}  // namespace
}  // namespace usep
