#include "algo/degreedy.h"

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(DeGreedyTest, Names) {
  EXPECT_EQ(DeGreedyPlanner().name(), "DeGreedy");
  DeGreedyPlanner::Options with_rg;
  with_rg.augment_with_rg = true;
  EXPECT_EQ(DeGreedyPlanner(with_rg).name(), "DeGreedy+RG");
}

TEST(DeGreedyTest, Table1PlanningFeasible) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = DeGreedyPlanner().Plan(instance);
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_GT(result.planning.total_utility(), 0.0);
}

class DeGreedyRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeGreedyRandomTest, FeasiblePlannings) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeGreedyPlanner().Plan(*instance);
  EXPECT_TRUE(testing::IsValidPlanning(*instance, result.planning));
}

TEST_P(DeGreedyRandomTest, RgAugmentationNeverLowersUtility) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 17));
  ASSERT_TRUE(instance.ok());
  const PlannerResult base = DeGreedyPlanner().Plan(*instance);
  DeGreedyPlanner::Options options;
  options.augment_with_rg = true;
  const PlannerResult augmented = DeGreedyPlanner(options).Plan(*instance);
  EXPECT_TRUE(testing::IsValidPlanning(*instance, augmented.planning));
  EXPECT_GE(augmented.planning.total_utility(),
            base.planning.total_utility() - 1e-9);
}

TEST_P(DeGreedyRandomTest, NeverBeatsDeDpoOnPerUserSubproblems) {
  // GreedySingle is suboptimal per user, but the *overall* DeGreedy utility
  // can occasionally exceed DeDPO's (different claims cascade differently).
  // What must hold: both are feasible and in the same ballpark.  We assert
  // DeGreedy >= 60% of DeDPO, far looser than the paper's observed ~95%+,
  // to keep the test robust.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 41));
  ASSERT_TRUE(instance.ok());
  const PlannerResult degreedy = DeGreedyPlanner().Plan(*instance);
  const PlannerResult dedpo = DeDpoPlanner().Plan(*instance);
  EXPECT_GE(degreedy.planning.total_utility(),
            0.6 * dedpo.planning.total_utility())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeGreedyRandomTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(DeGreedyTest, FullConflictCliqueDegradesGracefully) {
  GeneratorConfig config = testing::MediumRandomConfig(9);
  config.conflict_ratio = 1.0;
  config.conflict_strategy = ConflictStrategy::kClique;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeGreedyPlanner().Plan(*instance);
  EXPECT_TRUE(testing::IsValidPlanning(*instance, result.planning));
  for (UserId u = 0; u < instance->num_users(); ++u) {
    EXPECT_LE(result.planning.schedule(u).size(), 1);
  }
}

TEST(DeGreedyTest, StatsCountHeapPushesAndIterations) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = DeGreedyPlanner().Plan(instance);
  EXPECT_GT(result.stats.iterations, 0);
  EXPECT_GT(result.stats.heap_pushes, 0);
}

}  // namespace
}  // namespace usep
