#include "algo/fallback_planner.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "algo/ratio_greedy.h"
#include "common/failpoint.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class FallbackPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

std::unique_ptr<Planner> MakeChain(const std::string& spec) {
  StatusOr<std::unique_ptr<Planner>> chain = FallbackPlanner::FromSpec(spec);
  EXPECT_TRUE(chain.ok()) << chain.status().ToString();
  return std::move(chain).value();
}

TEST_F(FallbackPlannerTest, FromSpecParsesNamesAndWhitespace) {
  const std::unique_ptr<Planner> chain =
      MakeChain("Exact -> dedpo+rg ->RatioGreedy");
  EXPECT_EQ(chain->name(), "Fallback[Exact->DeDPO+RG->RatioGreedy]");
}

TEST_F(FallbackPlannerTest, FromSpecRejectsUnknownRung) {
  const StatusOr<std::unique_ptr<Planner>> chain =
      FallbackPlanner::FromSpec("Exact->NoSuchPlanner");
  EXPECT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kNotFound);
}

TEST_F(FallbackPlannerTest, FromSpecRejectsEmptyRung) {
  EXPECT_FALSE(FallbackPlanner::FromSpec("Exact->->RatioGreedy").ok());
  EXPECT_FALSE(FallbackPlanner::FromSpec("->Exact").ok());
  EXPECT_FALSE(FallbackPlanner::FromSpec("Exact->").ok());
}

TEST_F(FallbackPlannerTest, RegistryBuildsChainsFromArrowSpecs) {
  const StatusOr<std::unique_ptr<Planner>> chain =
      MakePlannerByName("Exact->RatioGreedy");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ((*chain)->name(), "Fallback[Exact->RatioGreedy]");
}

TEST_F(FallbackPlannerTest, FirstRungWinsWhenItCompletes) {
  const Instance instance = testing::MakeTable1Instance();
  const std::unique_ptr<Planner> chain = MakeChain("Exact->RatioGreedy");
  const PlannerResult result = chain->Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_EQ(result.stats.fallback_rung, "Exact");
  EXPECT_EQ(result.stats.fallback_trace, "Exact:completed");
  // The winner is the exact optimum on this instance.
  const PlannerResult exact = ExactPlanner().Plan(instance);
  EXPECT_NEAR(result.planning.total_utility(),
              exact.planning.total_utility(), 1e-9);
}

TEST_F(FallbackPlannerTest, NodeBudgetOnFirstRungDegradesToTheNext) {
  const Instance instance = testing::MakeTable1Instance();
  std::vector<std::unique_ptr<Planner>> rungs;
  ExactPlanner::Options starved;
  starved.max_nodes = 1;
  rungs.push_back(std::make_unique<ExactPlanner>(starved));
  rungs.push_back(std::make_unique<RatioGreedyPlanner>());
  const FallbackPlanner chain(std::move(rungs));

  const PlannerResult result = chain.Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_EQ(result.stats.fallback_rung, "RatioGreedy");
  EXPECT_EQ(result.stats.fallback_trace,
            "Exact:node-budget -> RatioGreedy:completed");
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_GT(result.planning.total_utility(), 0.0);
}

TEST_F(FallbackPlannerTest, ArmedFailpointDegradesInsteadOfAborting) {
  const Instance instance = testing::MakeTable1Instance();
  failpoint::ScopedArm arm("exact.node_budget");
  const std::unique_ptr<Planner> chain =
      MakeChain("Exact->DeDPO+RG->RatioGreedy");
  const PlannerResult result = chain->Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_EQ(result.stats.fallback_rung, "DeDPO+RG");
  EXPECT_EQ(result.stats.fallback_trace,
            "Exact:injected-fault -> DeDPO+RG:completed");
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_GT(arm.hit_count(), 0);
}

TEST_F(FallbackPlannerTest, EveryRungStarvedReturnsBestSoFarValidPlanning) {
  // The acceptance scenario: an aggressive deadline on a fig4-scale
  // instance.  No rung completes, yet the chain must still produce a
  // validation-accepted planning and an honest termination reason.
  GeneratorConfig config = testing::MediumRandomConfig(11);
  config.num_events = 50;
  config.num_users = 500;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  PlanContext context;
  context.deadline = Deadline::AfterMillis(1.0);
  const std::unique_ptr<Planner> chain =
      MakeChain("Exact->DeDPO+RG->RatioGreedy");
  const PlannerResult result = chain->Plan(*instance, context);
  EXPECT_NE(result.termination, Termination::kCompleted);
  EXPECT_TRUE(testing::IsValidPlanning(*instance, result.planning));
  EXPECT_FALSE(result.stats.fallback_rung.empty());
  EXPECT_FALSE(result.stats.fallback_trace.empty());
}

TEST_F(FallbackPlannerTest, BestSoFarPicksTheHighestUtilityRung) {
  const Instance instance = testing::MakeTable1Instance();
  // Both rungs are cut short by the injected fault; the chain must return
  // whichever partial planning scored higher (and say the chain never
  // completed).
  failpoint::ScopedArm arm_rg("ratio_greedy.pop", /*skip_hits=*/3);
  failpoint::ScopedArm arm_exact("exact.node_budget");
  const std::unique_ptr<Planner> chain = MakeChain("Exact->RatioGreedy");
  const PlannerResult result = chain->Plan(instance);
  EXPECT_EQ(result.termination, Termination::kInjectedFault);
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_EQ(result.stats.fallback_trace,
            "Exact:injected-fault -> RatioGreedy:injected-fault");
  // The state-space Exact greedily completes its best frontier state when
  // the fault lands, so even a first-node cut carries a full greedy
  // planning — which outscores RatioGreedy's three pops here.  Verify the
  // chain really took the max by recomputing both rungs' scores.
  const PlannerResult exact_alone = ExactPlanner().Plan(instance);
  EXPECT_EQ(result.stats.fallback_rung, "Exact");
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_GT(result.planning.total_utility(), 0.0);
  EXPECT_LE(result.planning.total_utility(),
            exact_alone.planning.total_utility() + 1e-9);
}

TEST_F(FallbackPlannerTest, ChainTerminationThreadsThroughUsepSolveStats) {
  // The winning rung's guard_nodes are replaced by the chain-wide total so
  // reports reflect the whole descent.
  const Instance instance = testing::MakeTable1Instance();
  failpoint::ScopedArm arm("exact.node_budget");
  const std::unique_ptr<Planner> chain = MakeChain("Exact->RatioGreedy");
  const PlannerResult result = chain->Plan(instance);
  EXPECT_GT(result.stats.guard_nodes, 0);
}

}  // namespace
}  // namespace usep
