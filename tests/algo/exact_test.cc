#include "algo/exact.h"

#include <gtest/gtest.h>

#include <memory>

#include "algo/planner_registry.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(ExactTest, SolvesKnapsackReduction) {
  // Theorem 1's reduction direction, checked concretely: the optimal USEP
  // planning value equals the knapsack optimum.
  const Instance instance = testing::MakeKnapsackInstance(
      {60, 100, 120}, {10, 20, 30}, 50);
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_NEAR(result.planning.total_utility(), 220.0 / 120.0, 1e-9);
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
}

TEST(ExactTest, TinyMatrixOptimum) {
  // Users contend for event 0 (capacity 1).  Optimum: u0 takes {e0, e1}
  // (0.9 + 0.5); u1 gets nothing it is allowed to enjoy... u1 could take
  // e0 (0.8) but then u0 keeps {e1} (0.5): 1.3 < 1.4.
  const Instance instance = testing::MakeTinyMatrixInstance();
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_NEAR(result.planning.total_utility(), 1.4, 1e-9);
  EXPECT_TRUE(result.planning.schedule(0).Contains(0));
  EXPECT_TRUE(result.planning.schedule(0).Contains(1));
}

TEST(ExactTest, CapacityForcesSplitting) {
  // Two users, one event each can afford, capacity 1: the higher-utility
  // user must win under the optimum.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.3);
  builder.SetUtility(0, 1, 0.8);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {2, 0}});
  const Instance instance = *std::move(builder).Build();
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_NEAR(result.planning.total_utility(), 0.8, 1e-12);
  EXPECT_TRUE(result.planning.schedule(1).Contains(0));
}

TEST(ExactTest, EmptyInstance) {
  InstanceBuilder builder;
  builder.SetMetricLayout(MetricKind::kManhattan, {}, {});
  const Instance instance = *std::move(builder).Build();
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_EQ(result.planning.total_assignments(), 0);
}

TEST(ExactTest, BeatsOrMatchesEveryHeuristicByConstruction) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult exact = ExactPlanner().Plan(instance);
  EXPECT_TRUE(testing::IsValidPlanning(instance, exact.planning));
  EXPECT_GT(exact.stats.iterations, 0);
}

class ExactRandomTest : public ::testing::TestWithParam<uint64_t> {};

// Exhaustive cross-check of the branch-and-bound against plain recursive
// enumeration without bounding (implemented inline here).
double EnumerateOptimum(const Instance& instance, UserId u,
                        std::vector<int>& capacity_left, Planning* planning) {
  if (u == instance.num_users()) return 0.0;

  // Option 1: empty schedule for u.
  double best = EnumerateOptimum(instance, u + 1, capacity_left, planning);

  // Option 2: every feasible non-empty schedule, built via Planning to
  // reuse the constraint logic.  Depth-first over events in rank order.
  struct Dfs {
    const Instance& instance;
    UserId u;
    std::vector<int>& capacity_left;
    Planning* planning;
    double best_tail = 0.0;

    // Returns the best utility from extending the user's current partial
    // schedule, including completing later users.
    double Run(int next_rank, double current) {
      double best_here = current + Tail();
      const auto& sorted = instance.events_by_end_time();
      for (int rank = next_rank; rank < instance.num_events(); ++rank) {
        const EventId v = sorted[rank];
        if (capacity_left[v] == 0) continue;
        const auto insertion = planning->CheckAssign(v, u);
        if (!insertion.has_value()) continue;
        planning->Assign(v, u, *insertion);
        --capacity_left[v];
        best_here = std::max(
            best_here, Run(rank + 1, current + instance.utility(v, u)));
        ++capacity_left[v];
        planning->Unassign(v, u);
      }
      return best_here;
    }

    double Tail() {
      return EnumerateOptimum(instance, u + 1, capacity_left, planning);
    }
  };
  Dfs dfs{instance, u, capacity_left, planning};
  best = std::max(best, dfs.Run(0, 0.0));
  return best;
}

TEST_P(ExactRandomTest, MatchesPlainEnumeration) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 4;
  config.num_users = 3;
  config.capacity_mean = 1.5;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const PlannerResult exact = ExactPlanner().Plan(*instance);
  EXPECT_TRUE(testing::IsValidPlanning(*instance, exact.planning));

  Planning scratch(*instance);
  std::vector<int> capacity_left(instance->num_events());
  for (EventId v = 0; v < instance->num_events(); ++v) {
    capacity_left[v] = instance->event(v).capacity;
  }
  const double enumerated =
      EnumerateOptimum(*instance, 0, capacity_left, &scratch);
  EXPECT_NEAR(exact.planning.total_utility(), enumerated, 1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandomTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ExactGuardTest, NodeBudgetReturnsGracefullyInsteadOfAborting) {
  // Regression: a tiny node budget used to USEP_CHECK-abort the process.
  // It must now stop cleanly with a valid (possibly empty) planning.
  ExactPlanner::Options options;
  options.max_nodes = 1;
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
}

TEST(ExactGuardTest, ScheduleBudgetReturnsGracefullyInsteadOfAborting) {
  ExactPlanner::Options options;
  options.max_schedules_per_user = 1;  // Only the empty schedule survives.
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
}

TEST(ExactGuardTest, GenerousBudgetsStillReachTheOptimum) {
  ExactPlanner::Options options;
  options.max_nodes = 1'000'000;
  const Instance instance = testing::MakeTinyMatrixInstance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_NEAR(result.planning.total_utility(), 1.4, 1e-9);
}

// --- exact_stop disambiguation -------------------------------------------
//
// Termination alone conflates three different ceilings as kNodeBudget (the
// schedule-enumeration budget, the stored-state budget, and the guard's
// node budget).  PlannerStats::exact_stop tells them apart; these pin each
// value, plus the certification flag that keys the oracle suites.

TEST(ExactStopTest, UncutRunIsProvenOptimal) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_TRUE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "proven-optimal");
  EXPECT_GT(result.stats.states, 0);
}

TEST(ExactStopTest, ScheduleBudgetTruncationIsNotAGuardStop) {
  // Regression for the conflation bug: a truncated enumeration used to be
  // indistinguishable from the guard's node budget tripping mid-search.
  ExactPlanner::Options options;
  options.max_schedules_per_user = 1;  // Only the empty schedule survives.
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "schedule-budget");
}

TEST(ExactStopTest, StateBudgetReportsItsOwnName) {
  ExactPlanner::Options options;
  options.max_states = 1;
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "state-budget");
}

TEST(ExactStopTest, GuardNodeBudgetReportsGuardStop) {
  ExactPlanner::Options options;
  options.max_nodes = 1;
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "guard-stop");
}

TEST(ExactStopTest, LegacyCoreReportsTheSameVocabulary) {
  ExactPlanner::Options options;
  options.use_legacy_exact = true;
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_TRUE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "proven-optimal");
}

// --- state-space vs legacy parity ----------------------------------------

// Folds a planning's objective the way both search cores do — one per-user
// schedule utility at a time, each a left-fold over its events — so the
// comparison below can demand bit equality.  Both cores maximize over the
// identical set of fold values, so even utility ties cannot produce
// different bits.
double RefoldObjective(const Instance& instance, const Planning& planning) {
  double total = 0.0;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    double schedule_utility = 0.0;
    for (EventId v : planning.schedule(u).events()) {
      schedule_utility += instance.utility(v, u);
    }
    total += schedule_utility;
  }
  return total;
}

class ExactParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactParityTest, StateSpaceCoreMatchesLegacyBitForBit) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::SmallRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());

  ExactPlanner::Options legacy_options;
  legacy_options.use_legacy_exact = true;
  const PlannerResult fresh = ExactPlanner().Plan(*instance);
  const PlannerResult legacy = ExactPlanner(legacy_options).Plan(*instance);
  ASSERT_TRUE(fresh.stats.certified_optimal);
  ASSERT_TRUE(legacy.stats.certified_optimal);
  EXPECT_EQ(RefoldObjective(*instance, fresh.planning),
            RefoldObjective(*instance, legacy.planning))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactParityTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(ExactParityTest, ObjectiveIsInvariantAcrossThreadCounts) {
  // Exact has no parallel inner loops, but the registry contract ("plannings
  // are bit-identical at every thread count") must still hold through the
  // MakePlanner(kind, parallel) path.
  const Instance instance = testing::MakeTable1Instance();
  double reference = -1.0;
  for (int threads : {1, 2, 8}) {
    ParallelConfig parallel;
    parallel.num_threads = threads;
    const std::unique_ptr<Planner> planner =
        MakePlanner(PlannerKind::kExact, parallel);
    const PlannerResult result = planner->Plan(instance);
    EXPECT_TRUE(result.stats.certified_optimal);
    const double objective = RefoldObjective(instance, result.planning);
    if (reference < 0.0) reference = objective;
    EXPECT_EQ(objective, reference) << threads << " threads";
  }
}

}  // namespace
}  // namespace usep
