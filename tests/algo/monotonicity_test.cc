// Monotonicity laws of USEP, checked against the solvers:
//  - a user's optimal schedule utility is non-decreasing in their budget;
//  - the exact optimum is non-decreasing in any event capacity;
//  - the exact optimum is non-decreasing when users are added.
// These are theorems of the problem (any feasible solution stays feasible
// after the relaxation), so a violation is a solver bug.

#include <gtest/gtest.h>

#include "algo/dp_single.h"
#include "algo/exact.h"
#include "core/instance_builder.h"
#include "core/transforms.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Rebuilds `instance` with every budget multiplied by `factor` (integer).
Instance ScaleBudgets(const Instance& instance, Cost factor) {
  InstanceBuilder builder;
  for (const Event& event : instance.events()) {
    builder.AddEvent(event.interval, event.capacity, event.name);
  }
  for (const User& user : instance.users()) {
    builder.AddUser(user.budget * factor, user.name);
  }
  builder.SetConflictPolicy(instance.conflict_policy());
  std::vector<double> utilities(static_cast<size_t>(instance.num_events()) *
                                instance.num_users());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      utilities[static_cast<size_t>(v) * instance.num_users() + u] =
          instance.utility(v, u);
    }
  }
  builder.SetAllUtilities(std::move(utilities));
  builder.SetCostModel(instance.shared_cost_model());
  return *std::move(builder).Build();
}

// Rebuilds `instance` with every capacity increased by `extra`.
Instance RaiseCapacities(const Instance& instance, int extra) {
  InstanceBuilder builder;
  for (const Event& event : instance.events()) {
    builder.AddEvent(event.interval, event.capacity + extra, event.name);
  }
  for (const User& user : instance.users()) {
    builder.AddUser(user.budget, user.name);
  }
  builder.SetConflictPolicy(instance.conflict_policy());
  std::vector<double> utilities(static_cast<size_t>(instance.num_events()) *
                                instance.num_users());
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      utilities[static_cast<size_t>(v) * instance.num_users() + u] =
          instance.utility(v, u);
    }
  }
  builder.SetAllUtilities(std::move(utilities));
  builder.SetCostModel(instance.shared_cost_model());
  return *std::move(builder).Build();
}

std::vector<UserCandidate> AllPositiveCandidates(const Instance& instance,
                                                 UserId u) {
  std::vector<UserCandidate> candidates;
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (instance.utility(v, u) > 0.0) {
      candidates.push_back(UserCandidate{v, instance.utility(v, u)});
    }
  }
  return candidates;
}

class MonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicityTest, DpSingleUtilityGrowsWithBudget) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 8;
  config.budget_factor = 0.5;  // Start tight so growth is visible.
  const StatusOr<Instance> base = GenerateSyntheticInstance(config);
  ASSERT_TRUE(base.ok());

  for (UserId u = 0; u < base->num_users(); ++u) {
    double previous = -1.0;
    for (const Cost factor : {1, 2, 4, 8}) {
      const Instance scaled = ScaleBudgets(*base, factor);
      const SingleResult result =
          DpSingle(scaled, u, AllPositiveCandidates(scaled, u));
      EXPECT_GE(result.utility, previous - 1e-9)
          << "user " << u << " factor " << (long long)factor << " seed "
          << GetParam();
      previous = result.utility;
    }
  }
}

TEST_P(MonotonicityTest, ExactOptimumGrowsWithBudget) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 100);
  config.budget_factor = 0.5;
  const StatusOr<Instance> base = GenerateSyntheticInstance(config);
  ASSERT_TRUE(base.ok());
  double previous = -1.0;
  for (const Cost factor : {1, 2, 4}) {
    const Instance scaled = ScaleBudgets(*base, factor);
    const double optimum =
        ExactPlanner().Plan(scaled).planning.total_utility();
    EXPECT_GE(optimum, previous - 1e-9) << "factor " << (long long)factor;
    previous = optimum;
  }
}

TEST_P(MonotonicityTest, ExactOptimumGrowsWithCapacity) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 200);
  config.capacity_mean = 1.0;  // Start at unit capacities.
  const StatusOr<Instance> base = GenerateSyntheticInstance(config);
  ASSERT_TRUE(base.ok());
  double previous = -1.0;
  for (const int extra : {0, 1, 2, 5}) {
    const Instance raised = RaiseCapacities(*base, extra);
    const double optimum =
        ExactPlanner().Plan(raised).planning.total_utility();
    EXPECT_GE(optimum, previous - 1e-9) << "extra " << extra;
    previous = optimum;
  }
}

TEST_P(MonotonicityTest, ExactOptimumGrowsWithUsers) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 300);
  config.num_users = 4;
  const StatusOr<Instance> full = GenerateSyntheticInstance(config);
  ASSERT_TRUE(full.ok());
  double previous = -1.0;
  for (int keep = 1; keep <= full->num_users(); ++keep) {
    std::vector<UserId> users;
    for (UserId u = 0; u < keep; ++u) users.push_back(u);
    const StatusOr<Instance> subset = SelectUsers(*full, users);
    ASSERT_TRUE(subset.ok());
    const double optimum =
        ExactPlanner().Plan(*subset).planning.total_utility();
    EXPECT_GE(optimum, previous - 1e-9) << "keep " << keep;
    previous = optimum;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace usep
