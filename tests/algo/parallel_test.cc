// The parallel engine's contract, proven three ways:
//
//  1. Determinism: for every parallelized planner family, the planning at
//     num_threads in {1, 2, 8} is bit-identical (same objective, same
//     per-user schedules) — parallelism may only change wall-clock.
//  2. Batch semantics: ParallelBatchSolver returns results in job order,
//     identical to running each job alone; a shared deadline/cancellation
//     stops every job at a *valid* best-so-far planning.
//  3. Fault tolerance under concurrency: failpoints armed while worker
//     threads are live (both inside a planner's parallel inner loops and
//     across concurrent batch jobs) still yield valid best-so-far
//     plannings with honest Termination reporting.

#include "algo/parallel.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/planner_registry.h"
#include "common/failpoint.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

Instance MakeMediumInstance(uint64_t seed) {
  StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(seed));
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

std::vector<PlannerKind> ParallelizedKinds() {
  return {PlannerKind::kDeDpo,      PlannerKind::kDeDpoRg,
          PlannerKind::kDeGreedy,   PlannerKind::kDeGreedyRg,
          PlannerKind::kDeDpoRgLs,  PlannerKind::kDeGreedyRgLs};
}

PlannerResult PlanWithThreads(PlannerKind kind, const Instance& instance,
                              int num_threads,
                              const PlanContext& context = PlanContext()) {
  ParallelConfig config;
  config.num_threads = num_threads;
  // Medium instances sit below the default inline cutoff; force the pool so
  // this suite keeps proving the worker-thread paths bit-identical.
  config.min_parallel_range = 0;
  return MakePlanner(kind, config)->Plan(instance, context);
}

// --- 1. Bit-for-bit determinism across thread counts ----------------------

class ParallelDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminismTest, PlanningsIdenticalAtOneTwoAndEightThreads) {
  const Instance instance = MakeMediumInstance(GetParam());
  for (const PlannerKind kind : ParallelizedKinds()) {
    const PlannerResult sequential = PlanWithThreads(kind, instance, 1);
    ASSERT_TRUE(testing::IsValidPlanning(instance, sequential.planning))
        << PlannerKindName(kind);
    for (const int threads : {2, 8}) {
      const PlannerResult parallel = PlanWithThreads(kind, instance, threads);
      EXPECT_EQ(parallel.planning.total_utility(),
                sequential.planning.total_utility())
          << PlannerKindName(kind) << " at " << threads << " threads";
      EXPECT_EQ(parallel.planning.ToString(), sequential.planning.ToString())
          << PlannerKindName(kind) << " diverged at " << threads
          << " threads (seed " << GetParam() << ")";
      EXPECT_EQ(parallel.termination, sequential.termination);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Values(11, 22, 33));

TEST(ParallelDeterminismTest, RegistryDefaultMatchesExplicitSequential) {
  // MakePlanner(kind) must keep its historical fully sequential semantics.
  const Instance instance = MakeMediumInstance(7);
  for (const PlannerKind kind : ParallelizedKinds()) {
    const PlannerResult default_result = MakePlanner(kind)->Plan(instance);
    const PlannerResult explicit_seq = PlanWithThreads(kind, instance, 1);
    EXPECT_EQ(default_result.planning.ToString(),
              explicit_seq.planning.ToString())
        << PlannerKindName(kind);
  }
}

// --- 2. ParallelBatchSolver -----------------------------------------------

TEST(ParallelBatchSolverTest, ResultsInJobOrderIdenticalToSoloRuns) {
  const Instance a = MakeMediumInstance(100);
  const Instance b = MakeMediumInstance(200);

  std::vector<std::unique_ptr<Planner>> planners;
  planners.push_back(MakePlanner(PlannerKind::kDeDpoRg));
  planners.push_back(MakePlanner(PlannerKind::kDeGreedyRg));
  planners.push_back(MakePlanner(PlannerKind::kRatioGreedy));

  // A mix: many planners on one instance AND one planner on many instances.
  std::vector<BatchJob> jobs;
  for (const auto& planner : planners) {
    jobs.push_back(BatchJob{planner.get(), &a});
  }
  jobs.push_back(BatchJob{planners[0].get(), &b});

  ParallelConfig sequential;  // num_threads = 1.
  ParallelConfig four;
  four.num_threads = 4;
  const std::vector<PlannerResult> seq_results =
      ParallelBatchSolver(sequential).Solve(jobs, PlanContext());
  const std::vector<PlannerResult> par_results =
      ParallelBatchSolver(four).Solve(jobs, PlanContext());

  ASSERT_EQ(seq_results.size(), jobs.size());
  ASSERT_EQ(par_results.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const PlannerResult solo =
        jobs[i].planner->Plan(*jobs[i].instance, PlanContext());
    EXPECT_EQ(par_results[i].planning.ToString(), solo.planning.ToString())
        << "job " << i;
    EXPECT_EQ(seq_results[i].planning.ToString(), solo.planning.ToString())
        << "job " << i;
    EXPECT_TRUE(
        testing::IsValidPlanning(*jobs[i].instance, par_results[i].planning))
        << "job " << i;
  }
}

TEST(ParallelBatchSolverTest, SharedExpiredDeadlineStopsEveryJobValidly) {
  const Instance instance = MakeMediumInstance(300);
  const std::unique_ptr<Planner> dedpo = MakePlanner(PlannerKind::kDeDpoRg);
  const std::unique_ptr<Planner> degreedy =
      MakePlanner(PlannerKind::kDeGreedyRg);
  const std::vector<BatchJob> jobs = {BatchJob{dedpo.get(), &instance},
                                      BatchJob{degreedy.get(), &instance},
                                      BatchJob{dedpo.get(), &instance}};
  PlanContext context;
  context.deadline = Deadline::AfterMillis(0.0);  // Already expired.

  ParallelConfig four;
  four.num_threads = 4;
  const std::vector<PlannerResult> results =
      ParallelBatchSolver(four).Solve(jobs, context);
  ASSERT_EQ(results.size(), jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].termination, Termination::kDeadline) << "job " << i;
    EXPECT_TRUE(testing::IsValidPlanning(instance, results[i].planning))
        << "job " << i;
  }
}

TEST(ParallelBatchSolverTest, SharedCancellationStopsEveryJobValidly) {
  const Instance instance = MakeMediumInstance(400);
  const std::unique_ptr<Planner> planner = MakePlanner(PlannerKind::kDeDpoRg);
  const std::vector<BatchJob> jobs(4, BatchJob{planner.get(), &instance});
  PlanContext context;
  context.cancel.Cancel();  // Fired before any job starts.

  ParallelConfig two;
  two.num_threads = 2;
  const std::vector<PlannerResult> results =
      ParallelBatchSolver(two).Solve(jobs, context);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].termination, Termination::kCancelled) << "job " << i;
    EXPECT_TRUE(testing::IsValidPlanning(instance, results[i].planning))
        << "job " << i;
  }
}

TEST(ParallelBatchSolverTest, PerJobContextsGiveEachJobItsOwnBudget) {
  const Instance instance = MakeMediumInstance(500);
  const std::unique_ptr<Planner> planner = MakePlanner(PlannerKind::kDeDpoRg);
  const std::vector<BatchJob> jobs(2, BatchJob{planner.get(), &instance});

  std::vector<PlanContext> contexts(2);
  contexts[0].deadline = Deadline::AfterMillis(0.0);  // Job 0 starves...
  // ...job 1 keeps the default unlimited context.

  ParallelConfig two;
  two.num_threads = 2;
  const std::vector<PlannerResult> results =
      ParallelBatchSolver(two).Solve(jobs, contexts);
  EXPECT_EQ(results[0].termination, Termination::kDeadline);
  EXPECT_EQ(results[1].termination, Termination::kCompleted);
  EXPECT_TRUE(testing::IsValidPlanning(instance, results[0].planning));
  EXPECT_TRUE(testing::IsValidPlanning(instance, results[1].planning));
  // The starved job cannot beat the finished one.
  EXPECT_LE(results[0].planning.total_utility(),
            results[1].planning.total_utility() + 1e-9);
}

// --- 3. Failpoints under concurrency --------------------------------------

TEST(ParallelFailpointTest, InjectedFaultInParallelInnerLoopsIsDeterministic) {
  // "dedpo.user" fires on the sequential per-user loop while the champion
  // scans run on pool workers; the injected best-so-far planning must be
  // valid and identical at every thread count.
  const Instance instance = MakeMediumInstance(600);
  const PlannerResult reference = [&instance] {
    failpoint::ScopedArm arm("dedpo.user", /*skip_hits=*/5);
    return PlanWithThreads(PlannerKind::kDeDpoRg, instance, 1);
  }();
  EXPECT_EQ(reference.termination, Termination::kInjectedFault);
  EXPECT_TRUE(testing::IsValidPlanning(instance, reference.planning));

  for (const int threads : {2, 8}) {
    failpoint::ScopedArm arm("dedpo.user", /*skip_hits=*/5);
    const PlannerResult result =
        PlanWithThreads(PlannerKind::kDeDpoRg, instance, threads);
    EXPECT_EQ(result.termination, Termination::kInjectedFault);
    EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
    EXPECT_EQ(result.planning.ToString(), reference.planning.ToString())
        << "injected best-so-far diverged at " << threads << " threads";
  }
}

TEST(ParallelFailpointTest, LocalSearchRoundFaultUnderParallelScans) {
  const Instance instance = MakeMediumInstance(700);
  failpoint::ScopedArm arm("local_search.round");
  const PlannerResult result =
      PlanWithThreads(PlannerKind::kDeDpoRgLs, instance, 4);
  // The decorated base planner finished; the interrupted local search must
  // still hand back a valid planning no worse than untouched base output.
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_GT(arm.hit_count(), 0);
}

TEST(ParallelFailpointTest, FaultsFiredFromBatchWorkerThreads) {
  // Whole planner runs execute on pool workers here, so the armed site is
  // hit from several worker threads concurrently.  Every job must unwind
  // with a valid planning and report the injected fault.
  const Instance instance = MakeMediumInstance(800);
  const std::unique_ptr<Planner> planner = MakePlanner(PlannerKind::kDeGreedy);
  const std::vector<BatchJob> jobs(6, BatchJob{planner.get(), &instance});

  failpoint::ScopedArm arm("degreedy.user");  // Fires on every hit.
  ParallelConfig four;
  four.num_threads = 4;
  const std::vector<PlannerResult> results =
      ParallelBatchSolver(four).Solve(jobs, PlanContext());
  ASSERT_EQ(results.size(), jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].termination, Termination::kInjectedFault)
        << "job " << i;
    EXPECT_TRUE(testing::IsValidPlanning(instance, results[i].planning))
        << "job " << i;
  }
  EXPECT_GE(arm.hit_count(), static_cast<int64_t>(jobs.size()));
}

}  // namespace
}  // namespace usep
