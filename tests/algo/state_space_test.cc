#include "algo/state_space.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/exact.h"
#include "algo/plan_context.h"
#include "common/failpoint.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class StateSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// Enumerates every user's schedule set the way ExactPlanner does.
std::vector<ScheduleSet> EnumerateAll(const Instance& instance,
                                      PlanGuard* guard) {
  std::vector<ScheduleSet> per_user;
  per_user.reserve(instance.num_users());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    per_user.push_back(
        EnumerateSchedules(instance, u, /*max_schedules=*/1 << 20, guard));
  }
  return per_user;
}

// Reference optimum from the legacy depth-first core.  Refolded the way
// both search cores accumulate — one per-user schedule utility at a time,
// each itself a left-fold over the schedule's events — so == comparisons
// against SearchOutcome::objective are bit-safe (Planning::total_utility
// folds per-event across users, a different FP grouping).
double LegacyOptimum(const Instance& instance) {
  ExactPlanner::Options options;
  options.use_legacy_exact = true;
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted);
  EXPECT_TRUE(result.stats.certified_optimal);
  double total = 0.0;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    double schedule_utility = 0.0;
    for (EventId v : result.planning.schedule(u).events()) {
      schedule_utility += instance.utility(v, u);
    }
    total += schedule_utility;
  }
  return total;
}

TEST_F(StateSpaceTest, EnumerationIsSortedAndContainsTheEmptySchedule) {
  const Instance instance = testing::MakeTable1Instance();
  PlanContext context;
  PlanGuard guard(context);
  const std::vector<ScheduleSet> per_user = EnumerateAll(instance, &guard);
  ASSERT_EQ(per_user.size(), static_cast<size_t>(instance.num_users()));
  for (const ScheduleSet& set : per_user) {
    EXPECT_FALSE(set.truncated);
    ASSERT_FALSE(set.options.empty());
    ASSERT_GE(set.empty_index, 0);
    ASSERT_LT(set.empty_index, static_cast<int>(set.options.size()));
    EXPECT_TRUE(set.options[set.empty_index].events.empty());
    EXPECT_EQ(set.options[set.empty_index].utility, 0.0);
    for (size_t i = 1; i < set.options.size(); ++i) {
      EXPECT_GE(set.options[i - 1].utility, set.options[i].utility);
    }
  }
}

TEST_F(StateSpaceTest, CanonicalizeResidualClampsToRemainingDemand) {
  // Capacity beyond what the remaining users could ever consume is surplus:
  // it must not distinguish state keys.
  std::vector<int32_t> residual = {5, 2, 0, 7};
  const std::vector<int32_t> demand = {3, 4, 1, 0};
  StateSpaceSearch::CanonicalizeResidual(&residual, demand);
  EXPECT_EQ(residual, (std::vector<int32_t>{3, 2, 0, 0}));
}

TEST_F(StateSpaceTest, DemandVanishesAtTheGoalLayer) {
  // At depth == num_users no user remains, so every canonical goal key is
  // all-zero — all goals merge into a single state.
  const Instance instance = testing::MakeTable1Instance();
  PlanContext context;
  PlanGuard guard(context);
  StateSpaceSearch search(instance, EnumerateAll(instance, &guard), {});
  const std::vector<int32_t>& goal_demand =
      search.DemandAt(instance.num_users());
  for (int32_t d : goal_demand) EXPECT_EQ(d, 0);
  // And demand is monotone non-increasing in depth, slot by slot.
  for (int depth = 1; depth <= instance.num_users(); ++depth) {
    const std::vector<int32_t>& prev = search.DemandAt(depth - 1);
    const std::vector<int32_t>& cur = search.DemandAt(depth);
    ASSERT_EQ(prev.size(), cur.size());
    for (size_t i = 0; i < cur.size(); ++i) EXPECT_LE(cur[i], prev[i]);
  }
}

TEST_F(StateSpaceTest, AdmissibleBoundNeverBelowTheOptimum) {
  // On every small random instance the root bound (both flavors) must be an
  // upper bound on the certified optimum, and the capacity-aware bound must
  // never exceed the capacity-ignoring suffix bound.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const StatusOr<Instance> instance =
        GenerateSyntheticInstance(testing::SmallRandomConfig(seed));
    ASSERT_TRUE(instance.ok());
    const double opt = LegacyOptimum(*instance);

    PlanContext context;
    PlanGuard guard(context);
    StateSpaceSearch search(*instance, EnumerateAll(*instance, &guard), {});
    std::vector<int32_t> residual(search.tracked_events().size());
    for (size_t i = 0; i < residual.size(); ++i) {
      residual[i] = instance->event(search.tracked_events()[i]).capacity;
    }
    StateSpaceSearch::CanonicalizeResidual(&residual, search.DemandAt(0));
    const double bound = search.AdmissibleBound(0, residual);
    EXPECT_GE(bound, opt - 1e-12) << "seed " << seed;
    EXPECT_LE(bound, search.SuffixBound(0) + 1e-12) << "seed " << seed;
  }
}

TEST_F(StateSpaceTest, SearchMatchesTheLegacyObjectiveExactly) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const StatusOr<Instance> instance =
        GenerateSyntheticInstance(testing::SmallRandomConfig(seed));
    ASSERT_TRUE(instance.ok());
    PlanContext context;
    PlanGuard guard(context);
    StateSpaceSearch search(*instance, EnumerateAll(*instance, &guard), {});
    const SearchOutcome outcome = search.Run(&guard);
    EXPECT_TRUE(outcome.certified_optimal);
    EXPECT_EQ(outcome.stop, SearchStop::kProvenOptimal);
    // Bit-identical, not approximately equal: both cores sum the same
    // per-schedule utilities.
    EXPECT_EQ(outcome.objective, LegacyOptimum(*instance)) << "seed " << seed;
  }
}

TEST_F(StateSpaceTest, DominanceMergingFiresOnCapacityContendedInstances) {
  // Many users competing for few event seats produce lots of identical
  // residual vectors; the merge counter must show the collapse, and merging
  // must not change the certified objective.
  GeneratorConfig config = testing::SmallRandomConfig(7);
  config.num_events = 3;
  config.num_users = 8;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  PlanContext context;
  PlanGuard guard(context);
  StateSpaceSearch search(*instance, EnumerateAll(*instance, &guard), {});
  const SearchOutcome outcome = search.Run(&guard);
  EXPECT_TRUE(outcome.certified_optimal);
  EXPECT_GT(outcome.counters.merges, 0);
  EXPECT_GT(outcome.counters.states, 0);
  EXPECT_GT(outcome.counters.expansions, 0);
  EXPECT_GE(outcome.counters.root_bound, outcome.objective - 1e-12);
  EXPECT_EQ(outcome.objective, LegacyOptimum(*instance));
}

TEST_F(StateSpaceTest, MergeKeepsTheHigherOmegaArrival) {
  // Two users, one single-seat event both want: the search reaches the
  // depth-2 residual state "seat taken" twice (u0 takes it / u1 takes it)
  // and must keep the higher-utility arrival.  MakeTinyMatrixInstance pins
  // exactly this shape (v0 capacity 1, disjoint events).
  const Instance instance = testing::MakeTinyMatrixInstance();
  PlanContext context;
  PlanGuard guard(context);
  StateSpaceSearch search(instance, EnumerateAll(instance, &guard), {});
  const SearchOutcome outcome = search.Run(&guard);
  EXPECT_TRUE(outcome.certified_optimal);
  EXPECT_EQ(outcome.objective, LegacyOptimum(instance));
}

TEST_F(StateSpaceTest, StateBudgetStopKeepsAValidBestSoFar) {
  const Instance instance = testing::MakeTable1Instance();
  const double opt = LegacyOptimum(instance);

  ExactPlanner::Options options;
  options.max_states = 2;  // Far below what certification needs.
  const PlannerResult result = ExactPlanner(options).Plan(instance);
  EXPECT_EQ(result.termination, Termination::kNodeBudget);
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "state-budget");
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  // Anytime contract: the best-so-far planning carries real utility and
  // never beats the optimum.
  EXPECT_GT(result.planning.total_utility(), 0.0);
  EXPECT_LE(result.planning.total_utility(), opt + 1e-12);
}

TEST_F(StateSpaceTest, GuardStopKeepsAValidBestSoFar) {
  const Instance instance = testing::MakeTable1Instance();
  const double opt = LegacyOptimum(instance);

  failpoint::ScopedArm arm("exact.node_budget");
  const PlannerResult result = ExactPlanner().Plan(instance);
  EXPECT_EQ(result.termination, Termination::kInjectedFault);
  EXPECT_FALSE(result.stats.certified_optimal);
  EXPECT_EQ(result.stats.exact_stop, "guard-stop");
  EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  EXPECT_GT(result.planning.total_utility(), 0.0);
  EXPECT_LE(result.planning.total_utility(), opt + 1e-12);
}

TEST_F(StateSpaceTest, CapacityAwareBoundIsAnAblationOnlyKnob) {
  // Disabling the capacity-filtered bound must never change the certified
  // objective, only the amount of work.
  for (uint64_t seed = 31; seed <= 40; ++seed) {
    const StatusOr<Instance> instance =
        GenerateSyntheticInstance(testing::SmallRandomConfig(seed));
    ASSERT_TRUE(instance.ok());

    ExactPlanner::Options loose;
    loose.capacity_aware_bound = false;
    const PlannerResult tight_result = ExactPlanner().Plan(*instance);
    const PlannerResult loose_result = ExactPlanner(loose).Plan(*instance);
    ASSERT_TRUE(tight_result.stats.certified_optimal);
    ASSERT_TRUE(loose_result.stats.certified_optimal);
    EXPECT_EQ(tight_result.planning.total_utility(),
              loose_result.planning.total_utility())
        << "seed " << seed;
  }
}

TEST_F(StateSpaceTest, CertifiedObjectiveIsDeterministicAcrossReruns) {
  // Same instance, repeated runs: identical chosen vector, identical
  // objective bits, identical counters.  The search has no hidden
  // iteration-order dependence (hash-set iteration is never observed).
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::SmallRandomConfig(13));
  ASSERT_TRUE(instance.ok());

  SearchOutcome first;
  for (int run = 0; run < 3; ++run) {
    PlanContext context;
    PlanGuard guard(context);
    StateSpaceSearch search(*instance, EnumerateAll(*instance, &guard), {});
    const SearchOutcome outcome = search.Run(&guard);
    ASSERT_TRUE(outcome.certified_optimal);
    if (run == 0) {
      first = outcome;
      continue;
    }
    EXPECT_EQ(outcome.objective, first.objective);
    EXPECT_EQ(outcome.chosen, first.chosen);
    EXPECT_EQ(outcome.counters.expansions, first.counters.expansions);
    EXPECT_EQ(outcome.counters.states, first.counters.states);
    EXPECT_EQ(outcome.counters.merges, first.counters.merges);
  }
}

TEST_F(StateSpaceTest, SingleUserKnapsackReducesToTheBestSchedule) {
  // Theorem 1's reduction shape: one user, so the state space is two layers
  // and the answer is just that user's best feasible schedule.
  const Instance instance = testing::MakeKnapsackInstance(
      /*values=*/{0.6, 0.5, 0.4}, /*weights=*/{3, 2, 2},
      /*capacity=*/4);
  PlanContext context;
  PlanGuard guard(context);
  std::vector<ScheduleSet> per_user = EnumerateAll(instance, &guard);
  double best = 0.0;
  for (const ScheduleOption& option : per_user[0].options) {
    best = std::max(best, option.utility);
  }
  StateSpaceSearch search(instance, std::move(per_user), {});
  const SearchOutcome outcome = search.Run(&guard);
  EXPECT_TRUE(outcome.certified_optimal);
  EXPECT_EQ(outcome.objective, best);
  EXPECT_EQ(outcome.objective, LegacyOptimum(instance));
}

}  // namespace
}  // namespace usep
