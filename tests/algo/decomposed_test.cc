#include "algo/decomposed.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "core/validation.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(MakeSelectArrayTest, ClampsCapacityToUserCount) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 100);  // Capacity far above |U| = 2.
  builder.AddEvent({20, 30}, 1);
  builder.AddUser(10);
  builder.AddUser(10);
  builder.SetUtility(0, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}, {1, 0}},
                          {{0, 0}, {1, 1}});
  const Instance instance = *std::move(builder).Build();
  const SelectArray select = MakeSelectArray(instance);
  EXPECT_EQ(select[0].size(), 2u) << "clamped to |U|";
  EXPECT_EQ(select[1].size(), 1u);
  for (const auto& copies : select) {
    for (const int claimant : copies) EXPECT_EQ(claimant, -1);
  }
}

TEST(ChooseCopyTest, UnclaimedCopyKeepsFullUtility) {
  const Instance instance = testing::MakeTable1Instance();
  SelectArray select = MakeSelectArray(instance);
  const CopyChoice choice = ChooseCopy(instance, select, /*v=*/2, /*u=*/2);
  EXPECT_EQ(choice.copy, 0);
  EXPECT_DOUBLE_EQ(choice.mu_prime, 0.9);
}

TEST(ChooseCopyTest, PrefersUnclaimedOverClaimed) {
  const Instance instance = testing::MakeTable1Instance();
  SelectArray select = MakeSelectArray(instance);
  select[2][0] = 0;  // Copy 0 of v3 claimed by u1 (mu = 0.6).
  const CopyChoice choice = ChooseCopy(instance, select, 2, 2);
  EXPECT_EQ(choice.copy, 1) << "first unclaimed copy";
  EXPECT_DOUBLE_EQ(choice.mu_prime, 0.9);
}

TEST(ChooseCopyTest, AllClaimedPicksSmallestClaimantUtility) {
  const Instance instance = testing::MakeTable1Instance();
  SelectArray select = MakeSelectArray(instance);
  // v3 (event 2) has capacity 4; claim all copies.
  // mu(v3, .) = {0.6, 0.2, 0.9, 0.4, 0.5} for u0..u4.
  select[2] = {0, 1, 3, 4};  // Claimant utilities 0.6, 0.2, 0.4, 0.5.
  const CopyChoice choice = ChooseCopy(instance, select, 2, 2);
  EXPECT_EQ(choice.copy, 1) << "claimant u1 has the smallest mu (0.2)";
  EXPECT_NEAR(choice.mu_prime, 0.9 - 0.2, 1e-12);
}

TEST(ChooseCopyTest, NegativeMuPrimeSurfacesForWeakUsers) {
  const Instance instance = testing::MakeTable1Instance();
  SelectArray select = MakeSelectArray(instance);
  select[2] = {2, 2, 2, 2};  // All claimed by u3 (mu = 0.9).
  const CopyChoice choice = ChooseCopy(instance, select, 2, /*u=*/1);
  EXPECT_NEAR(choice.mu_prime, 0.2 - 0.9, 1e-12);
  EXPECT_LT(choice.mu_prime, 0.0) << "BuildCandidates must filter this out";
}

TEST(BuildCandidatesTest, FiltersNonPositiveMuPrime) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  SelectArray select = MakeSelectArray(instance);
  std::vector<int> chosen_copy(instance.num_events(), -1);
  // User 1: mu(0,1) = 0.8 > 0, mu(1,1) = 0 -> only event 0 is a candidate.
  const std::vector<UserCandidate> candidates =
      BuildCandidates(instance, select, 1, &chosen_copy);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].event, 0);
  EXPECT_DOUBLE_EQ(candidates[0].utility, 0.8);
  EXPECT_EQ(chosen_copy[0], 0);
}

TEST(BuildCandidatesTest, ReflectsEarlierClaims) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  SelectArray select = MakeSelectArray(instance);
  select[0][0] = 1;  // The only copy of event 0 claimed by user 1 (mu 0.8).
  std::vector<int> chosen_copy(instance.num_events(), -1);
  // User 0: mu(0,0) = 0.9; decomposed 0.9 - 0.8 = 0.1.
  const std::vector<UserCandidate> candidates =
      BuildCandidates(instance, select, 0, &chosen_copy);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].event, 0);
  EXPECT_NEAR(candidates[0].utility, 0.1, 1e-12);
  EXPECT_EQ(candidates[1].event, 1);
  EXPECT_DOUBLE_EQ(candidates[1].utility, 0.5);
}

TEST(AssemblePlanningTest, LastClaimantKeepsTheCopy) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  SelectArray select = MakeSelectArray(instance);
  select[0][0] = 1;  // Event 0 -> user 1.
  select[1][0] = 0;  // Event 1 copy 0 -> user 0.
  const Planning planning = AssemblePlanning(instance, select);
  EXPECT_TRUE(planning.schedule(1).Contains(0));
  EXPECT_TRUE(planning.schedule(0).Contains(1));
  EXPECT_EQ(planning.total_assignments(), 2);
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

TEST(AssemblePlanningTest, EmptySelectGivesEmptyPlanning) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  const Planning planning =
      AssemblePlanning(instance, MakeSelectArray(instance));
  EXPECT_EQ(planning.total_assignments(), 0);
}

TEST(AssemblePlanningTest, MultiEventScheduleInsertedInTimeOrder) {
  const Instance instance = testing::MakeTable1Instance();
  SelectArray select = MakeSelectArray(instance);
  // Give u1 (user 0) the chain v3 -> v2 -> v4 (disjoint, affordable:
  // budget 59).
  select[2][0] = 0;
  select[1][0] = 0;
  select[3][0] = 0;
  const Planning planning = AssemblePlanning(instance, select);
  EXPECT_EQ(planning.schedule(0).events(), (std::vector<EventId>{2, 1, 3}));
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

TEST(AugmentWithRatioGreedyTest, FillsSpareCapacity) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  Planning planning(instance);
  PlannerStats stats;
  AugmentWithRatioGreedy(instance, &planning, &stats);
  EXPECT_GT(planning.total_assignments(), 0);
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

TEST(MakeUserOrderTest, InstanceOrderIsIdentity) {
  const Instance instance = testing::MakeTable1Instance();
  EXPECT_EQ(MakeUserOrder(instance, UserOrder::kInstanceOrder, 1),
            (std::vector<UserId>{0, 1, 2, 3, 4}));
}

TEST(MakeUserOrderTest, BudgetOrdersSortByBudget) {
  const Instance instance = testing::MakeTable1Instance();
  // Budgets: 59, 29, 51, 9, 33.
  EXPECT_EQ(MakeUserOrder(instance, UserOrder::kBudgetAscending, 1),
            (std::vector<UserId>{3, 1, 4, 2, 0}));
  EXPECT_EQ(MakeUserOrder(instance, UserOrder::kBudgetDescending, 1),
            (std::vector<UserId>{0, 2, 4, 1, 3}));
}

TEST(MakeUserOrderTest, ShuffleIsSeededPermutation) {
  const Instance instance = testing::MakeTable1Instance();
  const std::vector<UserId> a =
      MakeUserOrder(instance, UserOrder::kShuffled, 7);
  const std::vector<UserId> b =
      MakeUserOrder(instance, UserOrder::kShuffled, 7);
  EXPECT_EQ(a, b);
  std::vector<UserId> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<UserId>{0, 1, 2, 3, 4}));
}

TEST(MakeUserOrderTest, NamesAreStable) {
  EXPECT_STREQ(UserOrderName(UserOrder::kInstanceOrder), "instance");
  EXPECT_STREQ(UserOrderName(UserOrder::kShuffled), "shuffled");
  EXPECT_STREQ(UserOrderName(UserOrder::kBudgetAscending), "budget-asc");
  EXPECT_STREQ(UserOrderName(UserOrder::kBudgetDescending), "budget-desc");
}

TEST(AugmentWithRatioGreedyTest, NoOpWhenEverythingFull) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(0, 1, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {2, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  const double utility = planning.total_utility();
  PlannerStats stats;
  AugmentWithRatioGreedy(instance, &planning, &stats);
  EXPECT_DOUBLE_EQ(planning.total_utility(), utility);
}

}  // namespace
}  // namespace usep
