#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "algo/dedp.h"
#include "algo/dedpo.h"
#include "algo/exact.h"
#include "core/validation.h"
#include "ebsn/meetup_simulator.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

std::vector<std::vector<EventId>> AllSchedules(const Planning& planning) {
  std::vector<std::vector<EventId>> schedules;
  schedules.reserve(planning.num_users());
  for (UserId u = 0; u < planning.num_users(); ++u) {
    schedules.push_back(planning.schedule(u).events());
  }
  return schedules;
}

TEST(DeDpFamilyTest, Names) {
  EXPECT_EQ(DeDpPlanner().name(), "DeDP");
  EXPECT_EQ(DeDpoPlanner().name(), "DeDPO");
  DeDpoPlanner::Options with_rg;
  with_rg.augment_with_rg = true;
  EXPECT_EQ(DeDpoPlanner(with_rg).name(), "DeDPO+RG");
}

TEST(DeDpFamilyTest, Table1PlanningsAreFeasible) {
  const Instance instance = testing::MakeTable1Instance();
  for (const Planner* planner :
       {static_cast<const Planner*>(new DeDpPlanner()),
        static_cast<const Planner*>(new DeDpoPlanner())}) {
    const PlannerResult result = planner->Plan(instance);
    const ValidationReport report =
        ValidatePlanning(instance, result.planning);
    EXPECT_TRUE(report.ok()) << planner->name() << ": " << report.ToString();
    EXPECT_GT(result.planning.total_utility(), 0.0);
    delete planner;
  }
}

TEST(DeDpFamilyTest, DeDpReportsLargeLogicalMemory) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult dedp = DeDpPlanner().Plan(instance);
  const PlannerResult dedpo = DeDpoPlanner().Plan(instance);
  // DeDP's mu^r array: (1+3+4+2 copies) * 5 users * 8 bytes = 400 bytes.
  EXPECT_EQ(dedp.stats.logical_peak_bytes, 10u * 5u * sizeof(double));
  EXPECT_LT(dedpo.stats.logical_peak_bytes, dedp.stats.logical_peak_bytes);
}

TEST(DeDpFamilyTest, SingleUserCaseIsOptimalSchedule) {
  // With |U| = 1 the decomposition is exact: DeDPO returns the single-user
  // DP optimum (knapsack).
  const Instance instance = testing::MakeKnapsackInstance(
      {60, 100, 120}, {10, 20, 30}, 50);
  const PlannerResult result = DeDpoPlanner().Plan(instance);
  EXPECT_NEAR(result.planning.total_utility(), (100.0 + 120.0) / 120.0, 1e-9);
}

class DeDpEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeDpEquivalenceTest, DeDpAndDeDpoProduceIdenticalPlannings) {
  GeneratorConfig config = testing::MediumRandomConfig(GetParam());
  config.num_users = 25;  // Keep DeDP's mu^r array cheap in tests.
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const PlannerResult dedp = DeDpPlanner().Plan(*instance);
  const PlannerResult dedpo = DeDpoPlanner().Plan(*instance);

  EXPECT_TRUE(ValidatePlanning(*instance, dedp.planning).ok());
  EXPECT_TRUE(ValidatePlanning(*instance, dedpo.planning).ok());
  // Lemma 2: the select-array bookkeeping is exactly equivalent to the full
  // mu^r updates, so the plannings are identical, not merely equal-utility.
  EXPECT_EQ(AllSchedules(dedp.planning), AllSchedules(dedpo.planning))
      << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(dedp.planning.total_utility(),
                   dedpo.planning.total_utility());
}

TEST_P(DeDpEquivalenceTest, RgAugmentationNeverLowersUtility) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 50));
  ASSERT_TRUE(instance.ok());
  const PlannerResult base = DeDpoPlanner().Plan(*instance);
  DeDpoPlanner::Options options;
  options.augment_with_rg = true;
  const PlannerResult augmented = DeDpoPlanner(options).Plan(*instance);
  EXPECT_TRUE(ValidatePlanning(*instance, augmented.planning).ok());
  EXPECT_GE(augmented.planning.total_utility(),
            base.planning.total_utility() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeDpEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(DeDpEquivalenceTest, HoldsOnTagSimilarityUtilities) {
  // Regression: EBSN utilities are discrete similarity values that collide
  // exactly, so a planner whose decomposed utilities drift by ulps diverges
  // from its twin on ties.  DeDP stores the canonical mu(v,j) - mu(v,r)
  // value precisely to keep this equality.
  CityConfig city = AucklandConfig();
  city.num_users = 200;
  const StatusOr<Instance> instance = SimulateCity(city, MeetupSimOptions());
  ASSERT_TRUE(instance.ok());
  const PlannerResult dedp = DeDpPlanner().Plan(*instance);
  const PlannerResult dedpo = DeDpoPlanner().Plan(*instance);
  EXPECT_EQ(AllSchedules(dedp.planning), AllSchedules(dedpo.planning));
  EXPECT_DOUBLE_EQ(dedp.planning.total_utility(),
                   dedpo.planning.total_utility());
}

class DeDpoFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(DeDpoFeasibilityTest, FeasibleAcrossConflictRatios) {
  GeneratorConfig config =
      testing::MediumRandomConfig(std::get<0>(GetParam()));
  config.conflict_ratio = std::get<1>(GetParam());
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*instance);
  const ValidationReport report = ValidatePlanning(*instance, result.planning);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConflicts, DeDpoFeasibilityTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)));

class UserOrderTest : public ::testing::TestWithParam<UserOrder> {};

TEST_P(UserOrderTest, AnyOrderStaysFeasibleAndHalfApproximate) {
  GeneratorConfig config = testing::SmallRandomConfig(321);
  config.num_events = 6;
  config.num_users = 4;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();

  DeDpoPlanner::Options options;
  options.user_order = GetParam();
  options.order_seed = 5;
  const PlannerResult result = DeDpoPlanner(options).Plan(*instance);
  EXPECT_TRUE(ValidatePlanning(*instance, result.planning).ok())
      << UserOrderName(GetParam());
  EXPECT_GE(result.planning.total_utility(), 0.5 * optimum - 1e-9)
      << "Theorem 3 is order-agnostic; order "
      << UserOrderName(GetParam());
  EXPECT_LE(result.planning.total_utility(), optimum + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, UserOrderTest,
                         ::testing::Values(UserOrder::kInstanceOrder,
                                           UserOrder::kShuffled,
                                           UserOrder::kBudgetAscending,
                                           UserOrder::kBudgetDescending),
                         [](const auto& info) {
                           std::string name = UserOrderName(info.param);
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

TEST(DeDpFamilyTest, AllEventsConflictingMeansAtMostOneEventPerUser) {
  GeneratorConfig config = testing::MediumRandomConfig(7);
  config.conflict_ratio = 1.0;
  config.conflict_strategy = ConflictStrategy::kClique;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = DeDpoPlanner().Plan(*instance);
  for (UserId u = 0; u < instance->num_users(); ++u) {
    EXPECT_LE(result.planning.schedule(u).size(), 1);
  }
}

}  // namespace
}  // namespace usep
