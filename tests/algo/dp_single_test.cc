#include "algo/dp_single.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

std::vector<UserCandidate> AllPositiveCandidates(const Instance& instance,
                                                 UserId u) {
  std::vector<UserCandidate> candidates;
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (instance.utility(v, u) > 0.0) {
      candidates.push_back(UserCandidate{v, instance.utility(v, u)});
    }
  }
  return candidates;
}

// Verifies a SingleResult is a feasible schedule for `u` and matches its
// claimed utility/route cost.
void ExpectFeasibleSingle(const Instance& instance, UserId u,
                          const std::vector<UserCandidate>& candidates,
                          const SingleResult& result) {
  double utility = 0.0;
  for (const EventId v : result.schedule) {
    const auto it =
        std::find_if(candidates.begin(), candidates.end(),
                     [v](const UserCandidate& c) { return c.event == v; });
    ASSERT_NE(it, candidates.end()) << "schedule uses a non-candidate event";
    utility += it->utility;
  }
  EXPECT_NEAR(result.utility, utility, 1e-9);

  Cost route = 0;
  if (!result.schedule.empty()) {
    route = instance.UserToEventCost(u, result.schedule.front());
    for (size_t i = 1; i < result.schedule.size(); ++i) {
      ASSERT_TRUE(
          instance.CanFollow(result.schedule[i - 1], result.schedule[i]));
      route += instance.EventTravelCost(result.schedule[i - 1],
                                        result.schedule[i]);
    }
    route += instance.EventToUserCost(result.schedule.back(), u);
  }
  EXPECT_EQ(route, result.route_cost);
  EXPECT_LE(route, instance.user(u).budget);
}

TEST(DpSingleTest, EmptyCandidatesGiveEmptySchedule) {
  const Instance instance = testing::MakeTable1Instance();
  const SingleResult result = DpSingle(instance, 0, {});
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.utility, 0.0);
}

TEST(DpSingleTest, SingleAffordableEventIsTaken) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  const SingleResult result =
      DpSingle(instance, 0, {{0, 0.9}});
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0}));
  EXPECT_DOUBLE_EQ(result.utility, 0.9);
  EXPECT_EQ(result.route_cost, 4);
}

TEST(DpSingleTest, UnaffordableEventIsSkipped) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(5);
  builder.SetUtility(0, 0, 1.0);
  builder.SetMetricLayout(MetricKind::kManhattan, {{10, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const SingleResult result = DpSingle(instance, 0, {{0, 1.0}});
  EXPECT_TRUE(result.schedule.empty());
}

TEST(DpSingleTest, PrefersUtilityOverCheapness) {
  // Two conflicting events: cheap with mu 0.3 vs expensive with mu 0.9.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({5, 15}, 1);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.3);
  builder.SetUtility(1, 0, 0.9);
  builder.SetMetricLayout(MetricKind::kManhattan, {{1, 0}, {40, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const SingleResult result =
      DpSingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_EQ(result.schedule, (std::vector<EventId>{1}));
  EXPECT_DOUBLE_EQ(result.utility, 0.9);
}

TEST(DpSingleTest, ChainsCompatibleEvents) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  // User 0: e0 then e1 costs 2 + 4 + 5 = 11 <= 20.
  const SingleResult result =
      DpSingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0, 1}));
  EXPECT_DOUBLE_EQ(result.utility, 1.4);
  EXPECT_EQ(result.route_cost, 11);
}

TEST(DpSingleTest, SolvesKnapsackOptimally) {
  // Classic knapsack: values {60,100,120}, weights {10,20,30}, cap 50 ->
  // optimum 220 (items 2 and 3).
  const Instance instance = testing::MakeKnapsackInstance(
      {60, 100, 120}, {10, 20, 30}, 50);
  const SingleResult result =
      DpSingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_EQ(result.schedule, (std::vector<EventId>{1, 2}));
  EXPECT_NEAR(result.utility, (100.0 + 120.0) / 120.0, 1e-9);
}

TEST(DpSingleTest, DecomposedUtilitiesOverrideInstanceUtilities) {
  // The DP must optimize the candidate (mu^r) utilities, not mu itself.
  const Instance instance = testing::MakeTinyMatrixInstance();
  const SingleResult result = DpSingle(instance, 0, {{0, 0.01}, {1, 0.9}});
  EXPECT_NEAR(result.utility, 0.91, 1e-12);
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0, 1}));
}

class DpSingleRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpSingleRandomTest, MatchesBruteForceOptimum) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 7;
  config.num_users = 3;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const std::vector<UserCandidate> candidates =
        AllPositiveCandidates(*instance, u);
    const SingleResult dp = DpSingle(*instance, u, candidates);
    const SingleResult brute = BruteForceSingle(*instance, u, candidates);
    EXPECT_NEAR(dp.utility, brute.utility, 1e-9)
        << "user " << u << " seed " << GetParam();
    ExpectFeasibleSingle(*instance, u, candidates, dp);
  }
}

TEST_P(DpSingleRandomTest, DenseTableMatchesSparse) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.grid_extent = 30;  // Keep budgets (and thus the dense table) small.
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  SingleUserOptions dense;
  dense.use_dense_table = true;
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const std::vector<UserCandidate> candidates =
        AllPositiveCandidates(*instance, u);
    const SingleResult sparse_result = DpSingle(*instance, u, candidates);
    const SingleResult dense_result =
        DpSingle(*instance, u, candidates, dense);
    EXPECT_NEAR(sparse_result.utility, dense_result.utility, 1e-9);
    ExpectFeasibleSingle(*instance, u, candidates, dense_result);
  }
}

TEST_P(DpSingleRandomTest, Lemma1PruningDoesNotChangeResult) {
  const GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 777);
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  SingleUserOptions no_pruning;
  no_pruning.apply_lemma1 = false;
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const std::vector<UserCandidate> candidates =
        AllPositiveCandidates(*instance, u);
    const SingleResult pruned = DpSingle(*instance, u, candidates);
    const SingleResult unpruned =
        DpSingle(*instance, u, candidates, no_pruning);
    EXPECT_NEAR(pruned.utility, unpruned.utility, 1e-12);
    EXPECT_EQ(pruned.schedule, unpruned.schedule);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpSingleRandomTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(DpSingleTest, StatsReportCells) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  const SingleResult result =
      DpSingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_GT(result.cells, 0);
  EXPECT_GT(result.peak_bytes, 0u);
}

TEST(BruteForceSingleTest, EmptyWhenNothingAffordable) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(1);
  builder.SetUtility(0, 0, 1.0);
  builder.SetMetricLayout(MetricKind::kManhattan, {{10, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const SingleResult result = BruteForceSingle(instance, 0, {{0, 1.0}});
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.utility, 0.0);
}

}  // namespace
}  // namespace usep
