#include "algo/local_search.h"

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(LocalSearchTest, AddMoveFillsObviousGaps) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);  // Empty.
  LocalSearchOptions options;
  const LocalSearchReport report =
      ImprovePlanning(instance, options, &planning);
  EXPECT_GT(report.adds, 0);
  EXPECT_GT(planning.total_utility(), 0.0);
  EXPECT_TRUE(testing::IsValidPlanning(instance, planning));
}

TEST(LocalSearchTest, TransferMovesEventToKeenerUser) {
  // One event with capacity 1; initially held by the lukewarm user.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100, "lukewarm");
  builder.AddUser(100, "keen");
  builder.SetUtility(0, 0, 0.2);
  builder.SetUtility(0, 1, 0.9);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {2, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));

  LocalSearchOptions options;
  options.enable_add = false;
  options.enable_swap = false;
  const LocalSearchReport report =
      ImprovePlanning(instance, options, &planning);
  EXPECT_EQ(report.transfers, 1);
  EXPECT_TRUE(planning.schedule(1).Contains(0));
  EXPECT_FALSE(planning.schedule(0).Contains(0));
  EXPECT_NEAR(report.utility_gain, 0.7, 1e-12);
}

TEST(LocalSearchTest, SwapExchangesMismatchedEvents) {
  // Two disjoint far-apart events; each user holds the one the *other*
  // prefers, and tight budgets prevent the transfer path (neither can hold
  // both or take the other's event without giving up their own... the
  // capacity is 1 so transfer is blocked by the occupied seat).
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1, "A");
  builder.AddEvent({20, 30}, 1, "B");
  builder.AddUser(100, "likes-B");
  builder.AddUser(100, "likes-A");
  builder.SetUtility(0, 0, 0.2);
  builder.SetUtility(1, 0, 0.9);
  builder.SetUtility(0, 1, 0.9);
  builder.SetUtility(1, 1, 0.2);
  builder.SetMetricLayout(MetricKind::kManhattan, {{5, 0}, {0, 5}},
                          {{0, 0}, {1, 1}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));  // A -> likes-B.
  ASSERT_TRUE(planning.TryAssign(1, 1));  // B -> likes-A.

  LocalSearchOptions options;
  options.enable_add = false;
  options.enable_transfer = false;
  const LocalSearchReport report =
      ImprovePlanning(instance, options, &planning);
  EXPECT_EQ(report.swaps, 1);
  EXPECT_TRUE(planning.schedule(0).Contains(1));
  EXPECT_TRUE(planning.schedule(1).Contains(0));
  EXPECT_NEAR(planning.total_utility(), 1.8, 1e-12);
  EXPECT_TRUE(testing::IsValidPlanning(instance, planning));
}

TEST(LocalSearchTest, FixedPointOfOptimumIsStable) {
  const Instance instance = testing::MakeTable1Instance();
  PlannerResult exact = ExactPlanner().Plan(instance);
  const double optimum = exact.planning.total_utility();
  LocalSearchOptions options;
  const LocalSearchReport report =
      ImprovePlanning(instance, options, &exact.planning);
  // Rolled-back attempts add/subtract the same utilities, which can leave
  // sub-ulp drift in the incremental total; hence NEAR, not EQ.
  EXPECT_NEAR(exact.planning.total_utility(), optimum, 1e-9)
      << "local search must not move off the optimum";
  EXPECT_NEAR(report.utility_gain, 0.0, 1e-9);
}

class LocalSearchRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalSearchRandomTest, NeverLowersUtilityAndStaysFeasible) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  for (const PlannerKind kind :
       {PlannerKind::kRatioGreedy, PlannerKind::kDeGreedy,
        PlannerKind::kDeDpoRg}) {
    PlannerResult result = MakePlanner(kind)->Plan(*instance);
    const double before = result.planning.total_utility();
    LocalSearchOptions options;
    const LocalSearchReport report =
        ImprovePlanning(*instance, options, &result.planning);
    EXPECT_GE(result.planning.total_utility(), before - 1e-9);
    EXPECT_NEAR(report.utility_gain,
                result.planning.total_utility() - before, 1e-9);
    const ValidationReport validation =
        ValidatePlanning(*instance, result.planning);
    EXPECT_TRUE(validation.ok())
        << PlannerKindName(kind) << "\n" << validation.ToString();
  }
}

TEST_P(LocalSearchRandomTest, NeverExceedsExactOptimumOnSmallInstances) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 400);
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  const PlannerResult result =
      MakePlanner(PlannerKind::kDeDpoRgLs)->Plan(*instance);
  EXPECT_LE(result.planning.total_utility(), optimum + 1e-9);
  EXPECT_GE(result.planning.total_utility(), 0.5 * optimum - 1e-9)
      << "local search preserves the base 1/2 guarantee";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchRandomTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(LocalSearchPlannerTest, DecoratorNameAndBehaviour) {
  const std::unique_ptr<Planner> planner =
      MakePlanner(PlannerKind::kDeDpoRgLs);
  EXPECT_EQ(planner->name(), "DeDPO+RG+LS");
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult with_ls = planner->Plan(instance);
  const PlannerResult without =
      MakePlanner(PlannerKind::kDeDpoRg)->Plan(instance);
  EXPECT_GE(with_ls.planning.total_utility(),
            without.planning.total_utility() - 1e-9);
  EXPECT_TRUE(testing::IsValidPlanning(instance, with_ls.planning));
}

TEST(LocalSearchTest, MaxRoundsRespected) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(77));
  ASSERT_TRUE(instance.ok());
  Planning planning(*instance);
  LocalSearchOptions options;
  options.max_rounds = 1;
  const LocalSearchReport report =
      ImprovePlanning(*instance, options, &planning);
  EXPECT_EQ(report.rounds, 1);
}

}  // namespace
}  // namespace usep
