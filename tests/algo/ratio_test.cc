#include "algo/ratio.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(RatioTest, LargerRatioWins) {
  // 0.8/4 = 0.2 vs 0.5/10 = 0.05.
  EXPECT_TRUE(RatioBetter({0.8, 4}, {0.5, 10}));
  EXPECT_FALSE(RatioBetter({0.5, 10}, {0.8, 4}));
}

TEST(RatioTest, ExactTieBrokenBySmallerIncCost) {
  // 0.2/2 == 0.4/4 == 0.1: prefer the cheaper insertion.
  EXPECT_TRUE(RatioBetter({0.2, 2}, {0.4, 4}));
  EXPECT_FALSE(RatioBetter({0.4, 4}, {0.2, 2}));
  EXPECT_EQ(CompareRatio({0.2, 2}, {0.4, 4}), -1);
}

TEST(RatioTest, ZeroIncCostIsInfiniteRatio) {
  EXPECT_TRUE(RatioBetter({0.1, 0}, {1.0, 1}));
  EXPECT_FALSE(RatioBetter({1.0, 1}, {0.1, 0}));
}

TEST(RatioTest, BothZeroIncCostComparedByUtility) {
  EXPECT_TRUE(RatioBetter({0.9, 0}, {0.5, 0}));
  EXPECT_FALSE(RatioBetter({0.5, 0}, {0.9, 0}));
  EXPECT_EQ(CompareRatio({0.5, 0}, {0.5, 0}), 0);
}

TEST(RatioTest, IdenticalKeysAreEqual) {
  EXPECT_EQ(CompareRatio({0.3, 7}, {0.3, 7}), 0);
  EXPECT_FALSE(RatioBetter({0.3, 7}, {0.3, 7}));
}

TEST(RatioTest, ComparisonIsAntisymmetric) {
  const RatioKey keys[] = {{0.5, 3}, {0.7, 5}, {0.5, 0}, {0.2, 3}, {0.7, 0}};
  for (const RatioKey& a : keys) {
    for (const RatioKey& b : keys) {
      EXPECT_EQ(CompareRatio(a, b), -CompareRatio(b, a));
    }
  }
}

TEST(RatioTest, ComparisonIsTransitiveOnSample) {
  const RatioKey keys[] = {{0.5, 3}, {0.7, 5}, {0.5, 0},
                           {0.2, 3}, {0.7, 0}, {0.4, 6}};
  for (const RatioKey& a : keys) {
    for (const RatioKey& b : keys) {
      for (const RatioKey& c : keys) {
        if (CompareRatio(a, b) < 0 && CompareRatio(b, c) < 0) {
          EXPECT_LT(CompareRatio(a, c), 0);
        }
      }
    }
  }
}

TEST(RatioTest, ExactForLargeCosts) {
  // Cross-multiplication stays exact where naive division would round:
  // 0.1/1000000001 < 0.1/1000000000.
  EXPECT_TRUE(RatioBetter({0.1, 1000000000}, {0.1, 1000000001}));
}

}  // namespace
}  // namespace usep
