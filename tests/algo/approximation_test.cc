// Empirical verification of Theorem 3: DeDP/DeDPO (and their +RG variants)
// achieve at least 1/2 of the optimal total utility.  Also sanity-checks
// that no heuristic ever exceeds the exact optimum.
//
// The RatioGreedyHalfOptimal suite below leans on the PR7 state-space Exact
// core: its certified-optimum envelope covers instances (|V| x |U| up to
// ~7x10 here) the legacy enumerator could not finish, so the 1/2 property
// is now checked on ~200 instances at sizes where capacity contention
// actually bites, including the Remark 1 (candidate-set) and Remark 2
// (participation-fee, triangle-inequality-breaking) transformed families.
// Every observed ratio also lands in a histogram printed at the end of the
// run, so a drift toward the 1/2 floor is visible before it becomes a
// failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "common/string_util.h"
#include "core/transforms.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class ApproximationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproximationTest, DeDpFamilyIsHalfApproximate) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 6;
  config.num_users = 4;
  config.capacity_mean = 2.0;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const PlannerResult exact = ExactPlanner().Plan(*instance);
  const double optimum = exact.planning.total_utility();

  for (const PlannerKind kind :
       {PlannerKind::kDeDp, PlannerKind::kDeDpo, PlannerKind::kDeDpoRg}) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    EXPECT_GE(result.planning.total_utility(), 0.5 * optimum - 1e-9)
        << PlannerKindName(kind) << " broke the 1/2 guarantee at seed "
        << GetParam() << " (got " << result.planning.total_utility()
        << ", optimum " << optimum << ")";
  }
}

TEST_P(ApproximationTest, NoPlannerExceedsTheOptimum) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 1000);
  config.num_events = 5;
  config.num_users = 3;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  for (const PlannerKind kind : PaperPlannerKinds()) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    EXPECT_LE(result.planning.total_utility(), optimum + 1e-9)
        << PlannerKindName(kind) << " beat the exact optimum at seed "
        << GetParam();
    EXPECT_TRUE(ValidatePlanning(*instance, result.planning).ok())
        << PlannerKindName(kind);
  }
}

TEST_P(ApproximationTest, HalfApproximationHoldsOnConflictHeavyInstances) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 2000);
  config.num_events = 6;
  config.num_users = 3;
  config.conflict_ratio = 0.8;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  const PlannerResult dedpo = MakePlanner(PlannerKind::kDeDpo)->Plan(*instance);
  EXPECT_GE(dedpo.planning.total_utility(), 0.5 * optimum - 1e-9);
}

TEST_P(ApproximationTest, HalfApproximationHoldsOnTightBudgets) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 3000);
  config.budget_factor = 0.5;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  const PlannerResult dedpo = MakePlanner(PlannerKind::kDeDpo)->Plan(*instance);
  EXPECT_GE(dedpo.planning.total_utility(), 0.5 * optimum - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(ApproximationTest, Table1DeDpWithinHalfOfOptimum) {
  const Instance instance = testing::MakeTable1Instance();
  const double optimum =
      ExactPlanner().Plan(instance).planning.total_utility();
  const double dedp =
      MakePlanner(PlannerKind::kDeDp)->Plan(instance).planning.total_utility();
  EXPECT_GE(dedp, 0.5 * optimum - 1e-9);
  EXPECT_LE(dedp, optimum + 1e-9);
}

// --- RatioGreedy vs the certified optimum, at certifiable-large sizes ----
//
// One test, ~200 instances: gtest_discover_tests runs every test in its own
// process, so the histogram over all observed ratios has to be accumulated
// inside a single test body.

// Certifies `instance` with the state-space Exact core, runs RatioGreedy,
// asserts the empirical 1/2 bound, and appends the observed ratio.
void CheckRatioGreedyHalf(const Instance& instance, const std::string& where,
                          std::vector<double>* ratios) {
  const PlannerResult exact = ExactPlanner().Plan(instance);
  ASSERT_TRUE(exact.stats.certified_optimal)
      << where << ": Exact failed to certify (stop=" << exact.stats.exact_stop
      << ", states=" << exact.stats.states << ")";
  const double optimum = exact.planning.total_utility();

  const PlannerResult greedy =
      MakePlanner(PlannerKind::kRatioGreedy)->Plan(instance);
  ASSERT_TRUE(testing::IsValidPlanning(instance, greedy.planning)) << where;
  const double omega = greedy.planning.total_utility();
  EXPECT_LE(omega, optimum + 1e-9) << where;
  EXPECT_GE(omega, 0.5 * optimum - 1e-9)
      << where << ": RatioGreedy broke the empirical 1/2 bound (got " << omega
      << ", optimum " << optimum << ")";
  ratios->push_back(optimum > 0.0 ? omega / optimum : 1.0);
}

Instance MakeUniformFamily(uint64_t seed) {
  // |V| x |U| = 70: beyond the legacy enumerator's practical reach, routine
  // for the state-space core.
  GeneratorConfig config = testing::SmallRandomConfig(seed);
  config.num_events = 7;
  config.num_users = 10;
  config.capacity_mean = 2.0;
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok());
  return *std::move(instance);
}

Instance MakeContentionFamily(uint64_t seed) {
  // Capacity ~1 everywhere: the regime where greedy seat-stealing hurts the
  // most, and where dominance merging does the certifying.
  GeneratorConfig config = testing::SmallRandomConfig(seed + 500);
  config.num_events = 5;
  config.num_users = 12;
  config.capacity_mean = 1.0;
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok());
  return *std::move(instance);
}

Instance MakeRemark1Family(uint64_t seed) {
  // Remark 1: per-user candidate sets, realized by zeroing utilities
  // outside them.  Deterministic sets from the seed: user u may attend
  // event v iff (u + 3 * v + seed) % 4 != 0 (about 3/4 density).
  GeneratorConfig config = testing::SmallRandomConfig(seed + 1500);
  config.num_events = 7;
  config.num_users = 8;
  StatusOr<Instance> base = GenerateSyntheticInstance(config);
  EXPECT_TRUE(base.ok());
  std::vector<std::vector<EventId>> candidates(base->num_users());
  for (UserId u = 0; u < base->num_users(); ++u) {
    for (EventId v = 0; v < base->num_events(); ++v) {
      if ((static_cast<uint64_t>(u) + 3 * static_cast<uint64_t>(v) + seed) %
              4 != 0) {
        candidates[u].push_back(v);
      }
    }
  }
  StatusOr<Instance> restricted = RestrictCandidates(*base, candidates);
  EXPECT_TRUE(restricted.ok());
  return *std::move(restricted);
}

Instance MakeRemark2Family(uint64_t seed) {
  // Remark 2: participation fees folded into inbound legs.  The resulting
  // matrix cost model generally breaks the triangle inequality, so this
  // family also covers the no-triangle corner of the cost-model space.
  GeneratorConfig config = testing::SmallRandomConfig(seed + 2500);
  config.num_events = 6;
  config.num_users = 9;
  config.budget_factor = 3.0;  // Headroom so fees do not empty the instance.
  StatusOr<Instance> base = GenerateSyntheticInstance(config);
  EXPECT_TRUE(base.ok());
  std::vector<Cost> fees(base->num_events());
  for (EventId v = 0; v < base->num_events(); ++v) {
    fees[v] = static_cast<Cost>((static_cast<uint64_t>(v) + seed) % 3);
  }
  StatusOr<Instance> priced = WithParticipationFees(*base, fees);
  EXPECT_TRUE(priced.ok());
  return *std::move(priced);
}

TEST(RatioGreedyHalfOptimal, TwoHundredCertifiedInstancesWithHistogram) {
  struct Family {
    const char* name;
    Instance (*make)(uint64_t seed);
  };
  const Family kFamilies[] = {
      {"uniform", MakeUniformFamily},
      {"contention", MakeContentionFamily},
      {"remark1", MakeRemark1Family},
      {"remark2", MakeRemark2Family},
  };

  std::vector<double> ratios;
  for (const Family& family : kFamilies) {
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      const Instance instance = family.make(seed);
      CheckRatioGreedyHalf(
          instance,
          std::string(family.name) + " seed=" + std::to_string(seed),
          &ratios);
    }
  }
  // 4 families x 50 seeds; anything less means a family silently skipped.
  ASSERT_EQ(ratios.size(), 200u);

  constexpr int kBins = 10;  // [0.5, 1.0] in 0.05 steps; last bin closed.
  int histogram[kBins] = {};
  double worst = 1.0;
  for (const double ratio : ratios) {
    worst = std::min(worst, ratio);
    const int bin = std::min(
        kBins - 1, std::max(0, static_cast<int>((ratio - 0.5) / 0.05)));
    ++histogram[bin];
  }
  EXPECT_GE(worst, 0.5);

  // Human-readable on stdout, machine-readable through test properties
  // (surfaced in ctest's XML output).
  std::string rendered;
  for (int b = 0; b < kBins; ++b) {
    const double lo = 0.5 + 0.05 * b;
    rendered += StrFormat("  [%.2f, %.2f%s %3d  %s\n", lo, lo + 0.05,
                          b == kBins - 1 ? "]" : ")", histogram[b],
                          std::string(histogram[b] / 2, '#').c_str());
    RecordProperty(StrFormat("ratio_bin_%.2f", lo), histogram[b]);
  }
  RecordProperty("ratio_min", StrFormat("%.4f", worst));
  RecordProperty("ratio_samples", static_cast<int>(ratios.size()));
  std::printf("RatioGreedy / OPT over %d certified instances (min %.4f):\n%s",
              static_cast<int>(ratios.size()), worst, rendered.c_str());
}

}  // namespace
}  // namespace usep
