// Empirical verification of Theorem 3: DeDP/DeDPO (and their +RG variants)
// achieve at least 1/2 of the optimal total utility.  Also sanity-checks
// that no heuristic ever exceeds the exact optimum.

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class ApproximationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproximationTest, DeDpFamilyIsHalfApproximate) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 6;
  config.num_users = 4;
  config.capacity_mean = 2.0;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const PlannerResult exact = ExactPlanner().Plan(*instance);
  const double optimum = exact.planning.total_utility();

  for (const PlannerKind kind :
       {PlannerKind::kDeDp, PlannerKind::kDeDpo, PlannerKind::kDeDpoRg}) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    EXPECT_GE(result.planning.total_utility(), 0.5 * optimum - 1e-9)
        << PlannerKindName(kind) << " broke the 1/2 guarantee at seed "
        << GetParam() << " (got " << result.planning.total_utility()
        << ", optimum " << optimum << ")";
  }
}

TEST_P(ApproximationTest, NoPlannerExceedsTheOptimum) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 1000);
  config.num_events = 5;
  config.num_users = 3;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());

  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  for (const PlannerKind kind : PaperPlannerKinds()) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    EXPECT_LE(result.planning.total_utility(), optimum + 1e-9)
        << PlannerKindName(kind) << " beat the exact optimum at seed "
        << GetParam();
    EXPECT_TRUE(ValidatePlanning(*instance, result.planning).ok())
        << PlannerKindName(kind);
  }
}

TEST_P(ApproximationTest, HalfApproximationHoldsOnConflictHeavyInstances) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 2000);
  config.num_events = 6;
  config.num_users = 3;
  config.conflict_ratio = 0.8;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  const PlannerResult dedpo = MakePlanner(PlannerKind::kDeDpo)->Plan(*instance);
  EXPECT_GE(dedpo.planning.total_utility(), 0.5 * optimum - 1e-9);
}

TEST_P(ApproximationTest, HalfApproximationHoldsOnTightBudgets) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 3000);
  config.budget_factor = 0.5;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const double optimum =
      ExactPlanner().Plan(*instance).planning.total_utility();
  const PlannerResult dedpo = MakePlanner(PlannerKind::kDeDpo)->Plan(*instance);
  EXPECT_GE(dedpo.planning.total_utility(), 0.5 * optimum - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(ApproximationTest, Table1DeDpWithinHalfOfOptimum) {
  const Instance instance = testing::MakeTable1Instance();
  const double optimum =
      ExactPlanner().Plan(instance).planning.total_utility();
  const double dedp =
      MakePlanner(PlannerKind::kDeDp)->Plan(instance).planning.total_utility();
  EXPECT_GE(dedp, 0.5 * optimum - 1e-9);
  EXPECT_LE(dedp, optimum + 1e-9);
}

}  // namespace
}  // namespace usep
