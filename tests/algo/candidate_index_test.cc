// Property testing for the CandidateIndex (algo/candidate_index.h).  The
// index is only allowed to be a cache: under ANY interleaving of assigns and
// removes, CachedCheckAssign(v, u) must answer exactly what
// Planning::CheckAssign(v, u) answers, for every pair, after every mutation
// — same feasibility verdict, same insertion position, same inc_cost.
//
// ~100 randomized instances (25 seeds x 4 regimes) spanning tight/loose
// capacity and budgets, plus the two hand-built matrix-cost instances,
// which exercise the no-triangle-inequality path (static round-trip pruning
// disabled; GuaranteesTriangleInequality() == false).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "algo/candidate_index.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/planning.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Compares the cached answer against the ground truth for every (v, u).
// Runs the sweep twice so every slot is exercised both as a miss (first
// query after a mutation) and as a hit (second query, same epoch).
void ExpectCacheMatchesGroundTruth(const Instance& instance,
                                   const Planning& planning,
                                   CandidateIndex* index,
                                   const std::string& where) {
  for (int pass = 0; pass < 2; ++pass) {
    for (EventId v = 0; v < instance.num_events(); ++v) {
      for (UserId u = 0; u < instance.num_users(); ++u) {
        const std::optional<Schedule::Insertion> want =
            planning.CheckAssign(v, u);
        const std::optional<Schedule::Insertion> got =
            index->CachedCheckAssign(planning, v, u);
        ASSERT_EQ(want.has_value(), got.has_value())
            << where << " pass=" << pass << " v=" << v << " u=" << u;
        if (want.has_value()) {
          ASSERT_EQ(want->position, got->position)
              << where << " pass=" << pass << " v=" << v << " u=" << u;
          ASSERT_EQ(want->inc_cost, got->inc_cost)
              << where << " pass=" << pass << " v=" << v << " u=" << u;
        }
      }
    }
  }
}

void ExpectStaticListsConsistent(const Instance& instance,
                                 const CandidateIndex& index) {
  // Both sides ascending, mutually consistent, and num_pairs totals them.
  int64_t total = 0;
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const Span<UserId> users = index.UsersOf(v);
    total += static_cast<int64_t>(users.size());
    for (size_t i = 0; i + 1 < users.size(); ++i) {
      EXPECT_LT(users[i], users[i + 1]) << "UsersOf(" << v << ") not ascending";
    }
    for (const UserId u : users) {
      EXPECT_GT(instance.utility(v, u), 0.0);
    }
  }
  EXPECT_EQ(index.num_pairs(), total);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const Span<CandidateIndex::EventRef> events = index.EventsOf(u);
    for (size_t i = 0; i + 1 < events.size(); ++i) {
      EXPECT_LT(events[i].event, events[i + 1].event)
          << "EventsOf(" << u << ") not ascending";
    }
    for (const CandidateIndex::EventRef& ref : events) {
      ASSERT_GE(ref.pos, 0);
      ASSERT_LT(ref.pos, static_cast<int32_t>(index.UsersOf(ref.event).size()));
      EXPECT_EQ(index.UsersOf(ref.event)[ref.pos], u)
          << "EventRef round trip broken";
    }
  }
}

// Runs the interleaved mutation drill on one instance.
void RunMutationDrill(const Instance& instance, uint64_t seed,
                      const std::string& where) {
  Planning planning(instance);
  CandidateIndex index(instance);
  ExpectStaticListsConsistent(instance, index);
  ExpectCacheMatchesGroundTruth(instance, planning, &index, where + " initial");

  Rng rng(seed * 6151 + 17);
  std::vector<std::pair<EventId, UserId>> assigned;
  const int steps = 24;
  for (int step = 0; step < steps; ++step) {
    const std::string at = where + " step=" + std::to_string(step);
    if (assigned.empty() || rng.Bernoulli(0.65)) {
      // Try an assign — half the time through the index (which must agree
      // with the planning on whether it succeeds), half directly.
      const EventId v =
          static_cast<EventId>(rng.UniformInt(0, instance.num_events() - 1));
      const UserId u =
          static_cast<UserId>(rng.UniformInt(0, instance.num_users() - 1));
      const bool expect_ok = planning.CheckAssign(v, u).has_value();
      bool ok;
      if (rng.Bernoulli(0.5)) {
        ok = index.TryAssignCached(&planning, v, u);
      } else {
        ok = planning.TryAssign(v, u);
      }
      ASSERT_EQ(ok, expect_ok) << at;
      if (ok) assigned.push_back({v, u});
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(assigned.size()) - 1));
      const auto [v, u] = assigned[pick];
      ASSERT_TRUE(planning.Unassign(v, u)) << at;
      assigned.erase(assigned.begin() + static_cast<int>(pick));
    }
    ExpectCacheMatchesGroundTruth(instance, planning, &index, at);
  }
  // The drill must actually mutate for the epoch guards to be exercised.
  EXPECT_GT(index.misses(), 0) << where;
  EXPECT_GT(index.hits(), 0) << where;
}

struct Regime {
  const char* name;
  double capacity_mean;
  double budget_factor;
};

constexpr Regime kRegimes[] = {
    {"baseline", 2.0, 2.0},
    {"tight-capacity", 1.0, 2.0},
    {"tight-budget", 3.0, 0.5},
    {"loose", 4.0, 4.0},
};

class CandidateIndexTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CandidateIndexTest, CachedCheckAssignMatchesGroundTruth) {
  for (const Regime& regime : kRegimes) {
    GeneratorConfig config = testing::SmallRandomConfig(GetParam());
    config.num_events = 8;
    config.num_users = 10;
    config.capacity_mean = regime.capacity_mean;
    config.budget_factor = regime.budget_factor;
    const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    ASSERT_TRUE(instance->TriangleInequalityHolds())
        << "generator instances use metric costs";
    RunMutationDrill(*instance,
                     GetParam() * 31 + static_cast<uint64_t>(&regime - kRegimes),
                     std::string(regime.name) +
                         " seed=" + std::to_string(GetParam()));
  }
}

TEST_P(CandidateIndexTest, MatrixCostModelsDisableStaticPruning) {
  // MatrixCostModel conservatively reports no triangle guarantee, so the
  // index must keep every mu > 0 pair scannable — and still answer exactly.
  const Instance tiny = testing::MakeTinyMatrixInstance();
  ASSERT_FALSE(tiny.TriangleInequalityHolds());
  CandidateIndex index(tiny);
  ASSERT_FALSE(index.MonotoneInfeasibilityIsPermanent());
  int64_t positive_pairs = 0;
  for (EventId v = 0; v < tiny.num_events(); ++v) {
    for (UserId u = 0; u < tiny.num_users(); ++u) {
      if (tiny.utility(v, u) > 0.0) ++positive_pairs;
    }
  }
  EXPECT_EQ(index.num_pairs(), positive_pairs);
  RunMutationDrill(tiny, GetParam(),
                   "tiny-matrix seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateIndexTest,
                         ::testing::Range<uint64_t>(0, 25));

// Failpoint: "candidate_index.build" suppresses the Lemma 1 cut, building
// the index as if the triangle guarantee were lost.  The degraded index is
// bigger (every mu > 0 pair kept) but must still answer exactly.
TEST(CandidateIndexFailpointTest, BuildFailpointDisablesPruningButStaysExact) {
  GeneratorConfig config = testing::SmallRandomConfig(7);
  config.num_events = 8;
  config.num_users = 10;
  config.budget_factor = 0.6;  // Tight budgets so the cut actually bites.
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  ASSERT_TRUE(instance->TriangleInequalityHolds());

  const CandidateIndex pruned(*instance);
  int64_t positive_pairs = 0;
  for (EventId v = 0; v < instance->num_events(); ++v) {
    for (UserId u = 0; u < instance->num_users(); ++u) {
      if (instance->utility(v, u) > 0.0) ++positive_pairs;
    }
  }
  ASSERT_LT(pruned.num_pairs(), positive_pairs)
      << "config too loose: the Lemma 1 cut pruned nothing, so the "
         "failpoint build would be indistinguishable";

  failpoint::ScopedArm arm("candidate_index.build");
  CandidateIndex degraded(*instance);
  EXPECT_GT(arm.hit_count(), 0);
  // Without pruning the degraded build keeps every positive-utility pair.
  EXPECT_EQ(degraded.num_pairs(), positive_pairs);
  ExpectStaticListsConsistent(*instance, degraded);
  // Correctness is unchanged: same answers as the ground truth, and the
  // interleaved drill passes on the oversized index too.
  RunMutationDrill(*instance, 7, "build-failpoint");
}

// Failpoint: "candidate_index.invalidate" drops memo writes, leaving slots
// stale.  The epoch guard must turn every future read on a stale slot into
// a recomputing miss — degraded throughput, never a wrong hit.
TEST(CandidateIndexFailpointTest, DroppedMemoWritesNeverProduceWrongHits) {
  GeneratorConfig config = testing::SmallRandomConfig(13);
  config.num_events = 8;
  config.num_users = 10;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();

  Planning planning(*instance);
  CandidateIndex index(*instance);
  // Splits the full (v, u) grid into pairs the static lists short-circuit
  // (counted as hits without touching the memo) and pairs that reach a slot.
  const auto count_pairs = [&](int64_t* static_pairs, int64_t* queryable) {
    *static_pairs = 0;
    *queryable = 0;
    for (EventId v = 0; v < instance->num_events(); ++v) {
      const Span<UserId> users = index.UsersOf(v);
      for (UserId u = 0; u < instance->num_users(); ++u) {
        if (!std::binary_search(users.begin(), users.end(), u)) {
          ++*static_pairs;
        } else if (!planning.EventFull(v)) {
          ++*queryable;
        }
      }
    }
  };
  int64_t static_pairs = 0;
  int64_t queryable = 0;
  {
    failpoint::ScopedArm arm("candidate_index.invalidate");
    count_pairs(&static_pairs, &queryable);
    ASSERT_GT(queryable, 0);
    const int64_t hits_before = index.hits();
    const int64_t misses_before = index.misses();
    // With every memo write dropped, BOTH passes of the sweep miss every
    // slot-backed pair — the second pass finds nothing memoized.
    ExpectCacheMatchesGroundTruth(*instance, planning, &index,
                                  "invalidate armed, empty");
    EXPECT_GT(arm.hit_count(), 0);
    EXPECT_EQ(index.misses() - misses_before, 2 * queryable);
    EXPECT_EQ(index.hits() - hits_before, 2 * static_pairs)
        << "only static short-circuits may count as hits while memo "
           "writes are dropped";
    // Answers stay exact across mutations while the failpoint is armed.
    for (UserId u = 0; u < instance->num_users(); ++u) {
      for (EventId v = 0; v < instance->num_events(); ++v) {
        if (index.TryAssignCached(&planning, v, u)) break;
      }
    }
    ExpectCacheMatchesGroundTruth(*instance, planning, &index,
                                  "invalidate armed, assigned");
  }
  // Disarmed, the memo heals: the first pass repopulates every slot, the
  // second hits all of them — answers exact throughout.
  count_pairs(&static_pairs, &queryable);
  const int64_t hits_before = index.hits();
  const int64_t misses_before = index.misses();
  ExpectCacheMatchesGroundTruth(*instance, planning, &index,
                                "invalidate disarmed");
  EXPECT_EQ(index.misses() - misses_before, queryable);
  EXPECT_EQ(index.hits() - hits_before, 2 * static_pairs + queryable);
}

}  // namespace
}  // namespace usep
