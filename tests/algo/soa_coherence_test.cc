// Property test for the CandidateIndex SoA mirrors: after ANY interleaving
// of planning mutations — assigns (which bump schedule epochs and splice
// schedules), unassigns (Schedule::RemoveAt splices), capacity patches
// (Instance::set_event_capacity), and batched scans (which write memo
// slots and compact live rows) — CheckCoherent must prove the flat arenas
// equal a from-scratch rebuild: CSR structure against the instance, every
// fresh memo slot against a recomputed Planning::CheckInsertion, the
// slot_inc_d_ NaN/exact-cast mirror against slot_inc_, and the
// Planning/Instance epoch + capacity + assigned-count mirrors against their
// sources.  Runs on metric (triangle) instances, on matrix-cost instances
// WITHOUT the triangle guarantee (static pruning off, droppability off),
// and across the serve Replanner's capacity fast path, where one index
// survives an Instance patched in place.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/candidate_index.h"
#include "common/rng.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "geo/cost_model.h"
#include "serve/plan_state.h"
#include "serve/replanner.h"
#include "serve/world.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// Random interleaving of every mutation path the index must mirror, with a
// full coherence audit after each step.  `instance` is mutable because
// capacity patches go through Instance::set_event_capacity, exactly like
// the Replanner's fast path.
void RunCoherenceDrill(Instance* instance, uint64_t seed,
                       const std::string& where) {
  const int num_events = instance->num_events();
  const int num_users = instance->num_users();
  Planning planning(*instance);
  CandidateIndex index(*instance);
  ASSERT_TRUE(index.CheckCoherent(planning)) << where << " (fresh)";

  std::vector<CandidateIndex::LiveEventRow> rows(num_events);
  for (EventId v = 0; v < num_events; ++v) index.InitLiveEventRow(v, &rows[v]);
  std::vector<int32_t> feasible_pos;
  std::vector<Schedule::Insertion> insertions;

  Rng rng(seed);
  for (int step = 0; step < 120; ++step) {
    switch (rng.UniformInt(0, 4)) {
      case 0: {  // Champion scan + assign: memo writes + row compaction.
        const EventId v =
            static_cast<EventId>(rng.UniformInt(0, num_events - 1));
        if (planning.EventFull(v)) break;
        // droppable=false: unassigns below can heal infeasibility, so lanes
        // must survive compaction (the non-monotone contract).
        const std::optional<CandidateIndex::Champion> champion =
            index.BestUserForEvent(planning, v, &rows[v], /*droppable=*/false);
        if (champion.has_value()) {
          planning.Assign(v, champion->id, champion->insertion);
        }
        break;
      }
      case 1: {  // Cached point assign on an arbitrary pair.
        const EventId v =
            static_cast<EventId>(rng.UniformInt(0, num_events - 1));
        const UserId u = static_cast<UserId>(rng.UniformInt(0, num_users - 1));
        index.TryAssignCached(&planning, v, u);
        break;
      }
      case 2: {  // Unassign: Schedule::RemoveAt splice + epoch bump.
        const UserId u = static_cast<UserId>(rng.UniformInt(0, num_users - 1));
        const std::vector<EventId>& events = planning.schedule(u).events();
        if (events.empty()) break;
        const EventId v = events[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(events.size()) - 1))];
        planning.Unassign(v, u);
        break;
      }
      case 3: {  // Capacity patch, never below current attendance (the
                 // Replanner evicts first; a bare patch must not invalidate
                 // the planning this drill keeps validating).
        const EventId v =
            static_cast<EventId>(rng.UniformInt(0, num_events - 1));
        const int floor = std::max(1, planning.assigned_count(v));
        const int cap = static_cast<int>(rng.UniformInt(floor, floor + 4));
        instance->set_event_capacity(v, cap);
        break;
      }
      case 4: {  // Batched whole-row probe (TryAdds path).
        const EventId v =
            static_cast<EventId>(rng.UniformInt(0, num_events - 1));
        index.ProbeRow(planning, v, &feasible_pos, &insertions);
        break;
      }
    }
    ASSERT_TRUE(index.CheckCoherent(planning)) << where << " step " << step;
  }
  // Bonus sanity: the drill's own moves kept the planning valid.  Only
  // claimable under the triangle guarantee — without it, an Unassign splice
  // joins two neighbors by a direct hop that may cost MORE than the detour
  // it replaced, so the surviving schedule can legitimately bust its budget.
  // The index must stay coherent either way (asserted above); validity of
  // arbitrary unassign sequences is not its contract.
  if (instance->TriangleInequalityHolds()) {
    ASSERT_TRUE(ValidatePlanning(*instance, planning).ok()) << where;
  }
}

class SoaCoherenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoaCoherenceTest, MetricInstancesStayCoherent) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  ASSERT_TRUE(instance->TriangleInequalityHolds());
  RunCoherenceDrill(&*instance, GetParam() * 7 + 1,
                    "metric seed=" + std::to_string(GetParam()));
}

TEST_P(SoaCoherenceTest, MediumMetricInstancesStayCoherent) {
  GeneratorConfig config = testing::MediumRandomConfig(GetParam());
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  RunCoherenceDrill(&*instance, GetParam() * 13 + 5,
                    "medium seed=" + std::to_string(GetParam()));
}

// A randomized explicit cost matrix deliberately violates the triangle
// inequality, so the index builds with static pruning off and
// MonotoneInfeasibilityIsPermanent() false — the conservative layout whose
// mirrors must ALSO track every mutation exactly.
TEST_P(SoaCoherenceTest, NoTriangleMatrixInstancesStayCoherent) {
  Rng rng(GetParam() * 31 + 17);
  const int num_events = 6;
  const int num_users = 8;
  InstanceBuilder builder;
  for (int v = 0; v < num_events; ++v) {
    const TimePoint start = static_cast<TimePoint>(rng.UniformInt(0, 80));
    const TimePoint length = static_cast<TimePoint>(rng.UniformInt(5, 30));
    builder.AddEvent({start, start + length},
                     static_cast<int>(rng.UniformInt(1, 3)));
  }
  for (int u = 0; u < num_users; ++u) {
    builder.AddUser(static_cast<Cost>(rng.UniformInt(20, 120)));
  }
  for (int v = 0; v < num_events; ++v) {
    for (int u = 0; u < num_users; ++u) {
      // ~1/3 zero utilities so the static mu > 0 cut has something to do.
      const double mu = rng.UniformInt(0, 2) == 0
                            ? 0.0
                            : rng.UniformDouble(0.05, 1.0);
      builder.SetUtility(v, u, mu);
    }
  }
  auto model = std::make_shared<MatrixCostModel>(num_events, num_users);
  for (int a = 0; a < num_events; ++a) {
    for (int b = 0; b < num_events; ++b) {
      if (a != b) {
        model->SetEventToEvent(a, b, static_cast<Cost>(rng.UniformInt(0, 40)));
      }
    }
  }
  for (int u = 0; u < num_users; ++u) {
    for (int v = 0; v < num_events; ++v) {
      model->SetUserToEvent(u, v, static_cast<Cost>(rng.UniformInt(0, 40)));
      model->SetEventToUser(v, u, static_cast<Cost>(rng.UniformInt(0, 40)));
    }
  }
  builder.SetCostModel(std::move(model));
  StatusOr<Instance> instance = std::move(builder).Build();
  ASSERT_TRUE(instance.ok()) << instance.status();
  ASSERT_FALSE(instance->TriangleInequalityHolds());
  RunCoherenceDrill(&*instance, GetParam() * 3 + 2,
                    "no-triangle seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoaCoherenceTest,
                         ::testing::Range<uint64_t>(0, 15));

// ---- The serve Replanner's capacity fast path -----------------------------

namespace sv = ::usep::serve;

sv::Mutation Join(uint64_t key, Cost budget, Point location,
                  std::vector<sv::MutationUtility> utilities = {}) {
  sv::Mutation m;
  m.kind = sv::MutationKind::kUserJoin;
  m.key = key;
  m.budget = budget;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

sv::Mutation Post(uint64_t key, TimeInterval interval, int capacity,
                  Point location,
                  std::vector<sv::MutationUtility> utilities = {}) {
  sv::Mutation m;
  m.kind = sv::MutationKind::kEventPost;
  m.key = key;
  m.interval = interval;
  m.capacity = capacity;
  m.location = location;
  m.utilities = std::move(utilities);
  return m;
}

sv::Mutation Capacity(uint64_t key, int capacity) {
  sv::Mutation m;
  m.kind = sv::MutationKind::kCapacityChange;
  m.key = key;
  m.capacity = capacity;
  return m;
}

// Applies the mutation service-style, then audits the surviving (or
// rebuilt) index against the live planning.
void StepAndAudit(sv::World* world, sv::Replanner* replanner,
                  sv::PlanState* state, const sv::Mutation& m) {
  ASSERT_TRUE(world->Apply(m).ok()) << m.ToLine();
  const StatusOr<sv::RepairOutcome> outcome =
      replanner->Repair(*world, m, state, /*shed=*/false);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  world->ClearDirty();
  if (replanner->index() != nullptr && replanner->planning() != nullptr) {
    EXPECT_TRUE(replanner->index()->CheckCoherent(*replanner->planning()))
        << "after " << m.ToLine();
  }
}

TEST(SoaCoherenceReplannerTest, CapacityFastPathKeepsMirrorsCoherent) {
  sv::World world{sv::WorldConfig{}};
  sv::PlanState state;
  sv::Replanner replanner(sv::LadderOptions{}, nullptr, nullptr);

  StepAndAudit(&world, &replanner, &state, Post(10, {0, 100}, 3, {0, 0}));
  StepAndAudit(&world, &replanner, &state, Post(11, {120, 200}, 2, {5, 5}));
  StepAndAudit(&world, &replanner, &state,
               Join(1, 1000, {1, 1}, {{10, 0.9}, {11, 0.4}}));
  StepAndAudit(&world, &replanner, &state,
               Join(2, 1000, {2, 2}, {{10, 0.8}, {11, 0.7}}));
  StepAndAudit(&world, &replanner, &state,
               Join(3, 1000, {3, 3}, {{10, 0.3}, {11, 0.6}}));
  ASSERT_NE(replanner.index(), nullptr);
  const CandidateIndex* index_before = replanner.index();

  // Grow: the fast path patches the instance in place and the SAME index
  // object keeps serving — its capacity mirror must read the new value.
  StepAndAudit(&world, &replanner, &state, Capacity(10, 5));
  EXPECT_EQ(replanner.index(), index_before) << "grow should reuse the index";

  // Shrink with evictions: schedules splice, epochs bump, counts drop —
  // every mirror must follow.
  StepAndAudit(&world, &replanner, &state, Capacity(10, 1));
  EXPECT_EQ(replanner.index(), index_before)
      << "shrink should reuse the index";

  // And a structural rebuild afterwards stays coherent too.
  StepAndAudit(&world, &replanner, &state,
               Join(4, 800, {4, 4}, {{10, 0.5}, {11, 0.9}}));
}

}  // namespace
}  // namespace usep
