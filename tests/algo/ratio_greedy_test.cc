#include "algo/ratio_greedy.h"

#include <gtest/gtest.h>

#include "algo/naive_ratio_greedy.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(RatioGreedyTest, NameIsStable) {
  EXPECT_EQ(RatioGreedyPlanner().name(), "RatioGreedy");
  EXPECT_EQ(NaiveRatioGreedyPlanner().name(), "NaiveRatioGreedy");
}

TEST(RatioGreedyTest, EmptyInstanceYieldsEmptyPlanning) {
  InstanceBuilder builder;
  builder.SetMetricLayout(MetricKind::kManhattan, {}, {});
  const Instance instance = *std::move(builder).Build();
  const PlannerResult result = RatioGreedyPlanner().Plan(instance);
  EXPECT_EQ(result.planning.total_assignments(), 0);
}

TEST(RatioGreedyTest, SingleObviousAssignmentIsMade) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.7);
  builder.SetMetricLayout(MetricKind::kManhattan, {{1, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const PlannerResult result = RatioGreedyPlanner().Plan(instance);
  EXPECT_EQ(result.planning.total_assignments(), 1);
  EXPECT_TRUE(result.planning.schedule(0).Contains(0));
  EXPECT_DOUBLE_EQ(result.planning.total_utility(), 0.7);
}

TEST(RatioGreedyTest, RespectsCapacityContention) {
  // One event with capacity 1, two users; the better ratio (nearer user,
  // equal utility) must win.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100, "near");
  builder.AddUser(100, "far");
  builder.SetUtility(0, 0, 0.5);
  builder.SetUtility(0, 1, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {9, 0}});
  const Instance instance = *std::move(builder).Build();
  const PlannerResult result = RatioGreedyPlanner().Plan(instance);
  EXPECT_TRUE(result.planning.schedule(0).Contains(0));
  EXPECT_TRUE(result.planning.schedule(1).events().empty());
}

TEST(RatioGreedyTest, Table1PlanningIsFeasibleAndReported) {
  const Instance instance = testing::MakeTable1Instance();
  const PlannerResult result = RatioGreedyPlanner().Plan(instance);
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok());
  EXPECT_GT(result.planning.total_utility(), 0.0);
  EXPECT_GT(result.stats.iterations, 0);
  EXPECT_GT(result.stats.heap_pushes, 0);
}

TEST(RatioGreedyTest, AugmentOnlyTouchesCandidateEvents) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  PlannerStats stats;
  // Restrict to event 2 (v3): only v3 assignments may appear.
  RatioGreedyPlanner::Augment(instance, {2}, &planning, &stats);
  EXPECT_GT(planning.total_assignments(), 0);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (const EventId v : planning.schedule(u).events()) {
      EXPECT_EQ(v, 2);
    }
  }
}

TEST(RatioGreedyTest, AugmentExtendsExistingPlanningWithoutBreakingIt) {
  const Instance instance = testing::MakeTable1Instance();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(2, 2));  // Pre-existing assignment.
  const double base_utility = planning.total_utility();
  PlannerStats stats;
  std::vector<EventId> all = {0, 1, 2, 3};
  RatioGreedyPlanner::Augment(instance, all, &planning, &stats);
  EXPECT_GE(planning.total_utility(), base_utility);
  EXPECT_TRUE(planning.schedule(2).Contains(2)) << "existing kept";
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

class RatioGreedyRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RatioGreedyRandomTest, AlwaysProducesFeasiblePlannings) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  const PlannerResult result = RatioGreedyPlanner().Plan(*instance);
  const ValidationReport report = ValidatePlanning(*instance, result.planning);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_P(RatioGreedyRandomTest, HeapVersionMatchesNaiveUtilityClosely) {
  // The heap version follows the paper's champion maintenance, which can
  // diverge from the idealized full-rescan greedy in rare tie/update cases;
  // empirically they match on small instances, and must stay within a few
  // percent of each other.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::SmallRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  const PlannerResult heap = RatioGreedyPlanner().Plan(*instance);
  const PlannerResult naive = NaiveRatioGreedyPlanner().Plan(*instance);
  EXPECT_TRUE(ValidatePlanning(*instance, naive.planning).ok());
  EXPECT_NEAR(heap.planning.total_utility(), naive.planning.total_utility(),
              0.05 * std::max(1.0, naive.planning.total_utility()))
      << "seed " << GetParam();
}

TEST_P(RatioGreedyRandomTest, GreedyIsMaximalPlanning) {
  // When RatioGreedy stops, no valid pair remains anywhere.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::SmallRandomConfig(GetParam() + 31));
  ASSERT_TRUE(instance.ok());
  PlannerResult result = RatioGreedyPlanner().Plan(*instance);
  for (EventId v = 0; v < instance->num_events(); ++v) {
    for (UserId u = 0; u < instance->num_users(); ++u) {
      EXPECT_FALSE(result.planning.CheckAssign(v, u).has_value())
          << "pair (" << v << ", " << u << ") still assignable";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RatioGreedyRandomTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace usep
