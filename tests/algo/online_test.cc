#include "algo/online.h"

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

TEST(OnlineTest, Names) {
  EXPECT_EQ(OnlinePlanner().name(), "Online-DP");
  OnlinePlanner::Options options;
  options.solver = OnlinePlanner::Solver::kGreedy;
  EXPECT_EQ(OnlinePlanner(options).name(), "Online-Greedy");
}

TEST(OnlineTest, FirstArrivalGetsSelfishOptimum) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  const PlannerResult result = OnlinePlanner().Plan(instance);
  // User 0 arrives first and takes both events (their selfish optimum).
  EXPECT_EQ(result.planning.schedule(0).events(),
            (std::vector<EventId>{0, 1}));
  // User 1 finds event 0 (capacity 1) gone and mu(1, 1) = 0: nothing left.
  EXPECT_TRUE(result.planning.schedule(1).events().empty());
}

TEST(OnlineTest, ArrivalOrderChangesWhoWins) {
  // One seat, two users who both want it; instance-order gives it to user
  // 0, a shuffle that reverses arrival gives it to user 1.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddUser(100);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.4);
  builder.SetUtility(0, 1, 0.9);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {1, 1}});
  const Instance instance = *std::move(builder).Build();

  const PlannerResult in_order = OnlinePlanner().Plan(instance);
  EXPECT_TRUE(in_order.planning.schedule(0).Contains(0));

  // Find a shuffle seed that reverses the two-user order.
  for (uint64_t seed = 1; seed < 32; ++seed) {
    OnlinePlanner::Options options;
    options.arrival_shuffle_seed = seed;
    const PlannerResult shuffled = OnlinePlanner(options).Plan(instance);
    if (shuffled.planning.schedule(1).Contains(0)) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no shuffle seed reversed a two-user arrival order";
}

TEST(OnlineTest, OnlineNeverBeatsExactOffline) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const StatusOr<Instance> instance =
        GenerateSyntheticInstance(testing::SmallRandomConfig(seed));
    ASSERT_TRUE(instance.ok());
    const double optimum =
        ExactPlanner().Plan(*instance).planning.total_utility();
    const PlannerResult online = OnlinePlanner().Plan(*instance);
    EXPECT_LE(online.planning.total_utility(), optimum + 1e-9)
        << "seed " << seed;
  }
}

class OnlineRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineRandomTest, AlwaysFeasible) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  for (const PlannerKind kind :
       {PlannerKind::kOnlineDp, PlannerKind::kOnlineGreedy}) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    const ValidationReport report =
        ValidatePlanning(*instance, result.planning);
    EXPECT_TRUE(report.ok()) << PlannerKindName(kind) << "\n"
                             << report.ToString();
  }
}

TEST_P(OnlineRandomTest, GreedyArrivalsNeverBeatDpArrivalsPerUser) {
  // Under the *same* arrival order and remaining capacities, each DP
  // arrival is at least as good for that user; globally the orders diverge
  // after the first user, so we only check both are feasible and positive.
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 7));
  ASSERT_TRUE(instance.ok());
  const PlannerResult dp = MakePlanner(PlannerKind::kOnlineDp)->Plan(*instance);
  const PlannerResult greedy =
      MakePlanner(PlannerKind::kOnlineGreedy)->Plan(*instance);
  EXPECT_GT(dp.planning.total_utility(), 0.0);
  EXPECT_GT(greedy.planning.total_utility(), 0.0);
}

TEST_P(OnlineRandomTest, GlobalPlanningBeatsOrMatchesFcfsOnAverage) {
  // The reason the paper exists: the offline 1/2-approximation should not
  // lose to first-come-first-served.  Individual instances can come close;
  // we assert DeDPO+RG >= 90% of Online-DP everywhere and no worse on
  // aggregate.
  double dedpo_total = 0.0;
  double online_total = 0.0;
  for (uint64_t seed = GetParam() * 100; seed < GetParam() * 100 + 3; ++seed) {
    const StatusOr<Instance> instance =
        GenerateSyntheticInstance(testing::MediumRandomConfig(seed));
    ASSERT_TRUE(instance.ok());
    const double dedpo = MakePlanner(PlannerKind::kDeDpoRg)
                             ->Plan(*instance)
                             .planning.total_utility();
    const double online = MakePlanner(PlannerKind::kOnlineDp)
                              ->Plan(*instance)
                              .planning.total_utility();
    EXPECT_GE(dedpo, 0.9 * online) << "seed " << seed;
    dedpo_total += dedpo;
    online_total += online;
  }
  EXPECT_GE(dedpo_total, online_total * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineRandomTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(OnlineTest, ShuffleIsDeterministicInSeed) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(3));
  ASSERT_TRUE(instance.ok());
  OnlinePlanner::Options options;
  options.arrival_shuffle_seed = 42;
  const PlannerResult a = OnlinePlanner(options).Plan(*instance);
  const PlannerResult b = OnlinePlanner(options).Plan(*instance);
  for (UserId u = 0; u < instance->num_users(); ++u) {
    EXPECT_EQ(a.planning.schedule(u).events(),
              b.planning.schedule(u).events());
  }
}

}  // namespace
}  // namespace usep
