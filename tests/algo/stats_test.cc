#include "algo/stats.h"

#include <string>

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(PlannerStatsTest, ToStringCarriesEveryCounter) {
  PlannerStats stats;
  stats.wall_seconds = 0.0125;
  stats.iterations = 42;
  stats.heap_pushes = 7;
  stats.dp_cells = 1000;
  stats.logical_peak_bytes = 2048;

  const std::string text = stats.ToString();
  EXPECT_NE(text.find("12.500 ms"), std::string::npos) << text;
  EXPECT_NE(text.find("iterations=42"), std::string::npos) << text;
  EXPECT_NE(text.find("heap_pushes=7"), std::string::npos) << text;
  EXPECT_NE(text.find("dp_cells=1000"), std::string::npos) << text;
  EXPECT_NE(text.find("logical_peak="), std::string::npos) << text;
  // No fallback section unless a trace is present.
  EXPECT_EQ(text.find("fallback"), std::string::npos) << text;
}

TEST(PlannerStatsTest, ToStringShowsFallbackTrace) {
  PlannerStats stats;
  stats.fallback_trace = "Exact:node-budget -> DeDPO+RG:completed";
  const std::string text = stats.ToString();
  EXPECT_NE(
      text.find("fallback=[Exact:node-budget -> DeDPO+RG:completed]"),
      std::string::npos)
      << text;
}

TEST(PlannerStatsTest, MergeFromSumsCountersAndWall) {
  PlannerStats a;
  a.wall_seconds = 0.5;
  a.iterations = 10;
  a.heap_pushes = 3;
  a.dp_cells = 100;
  a.guard_nodes = 11;
  PlannerStats b;
  b.wall_seconds = 0.25;
  b.iterations = 5;
  b.heap_pushes = 4;
  b.dp_cells = 50;
  b.guard_nodes = 9;

  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
  EXPECT_EQ(a.iterations, 15);
  EXPECT_EQ(a.heap_pushes, 7);
  EXPECT_EQ(a.dp_cells, 150);
  EXPECT_EQ(a.guard_nodes, 20);
}

TEST(PlannerStatsTest, MergeFromTakesMaxOfPeaks) {
  PlannerStats a;
  a.logical_peak_bytes = 4096;
  PlannerStats b;
  b.logical_peak_bytes = 1024;
  a.MergeFrom(b);
  // Peaks do not add across sequential runs.
  EXPECT_EQ(a.logical_peak_bytes, 4096u);

  PlannerStats c;
  c.logical_peak_bytes = 1 << 20;
  a.MergeFrom(c);
  EXPECT_EQ(a.logical_peak_bytes, static_cast<size_t>(1 << 20));
}

TEST(PlannerStatsTest, MergeFromJoinsFallbackStrings) {
  PlannerStats a;
  a.fallback_rung = "Exact";
  a.fallback_trace = "Exact:completed";
  PlannerStats b;
  b.fallback_rung = "DeDPO+RG";
  b.fallback_trace = "Exact:deadline -> DeDPO+RG:completed";

  a.MergeFrom(b);
  EXPECT_EQ(a.fallback_rung, "Exact; DeDPO+RG");
  EXPECT_EQ(a.fallback_trace,
            "Exact:completed; Exact:deadline -> DeDPO+RG:completed");
}

TEST(PlannerStatsTest, MergeFromSkipsEmptyFallbackSides) {
  // Empty other side leaves ours untouched (no dangling separator).
  PlannerStats a;
  a.fallback_rung = "Exact";
  a.MergeFrom(PlannerStats{});
  EXPECT_EQ(a.fallback_rung, "Exact");

  // Empty our side adopts theirs without a leading separator.
  PlannerStats c;
  PlannerStats d;
  d.fallback_rung = "DeGreedy+RG";
  c.MergeFrom(d);
  EXPECT_EQ(c.fallback_rung, "DeGreedy+RG");
}

TEST(PlannerStatsTest, MergeFromDefaultIsIdentity) {
  PlannerStats a;
  a.wall_seconds = 1.0;
  a.iterations = 2;
  a.logical_peak_bytes = 77;
  a.fallback_trace = "RatioGreedy:completed";
  const PlannerStats before = a;
  a.MergeFrom(PlannerStats{});
  EXPECT_DOUBLE_EQ(a.wall_seconds, before.wall_seconds);
  EXPECT_EQ(a.iterations, before.iterations);
  EXPECT_EQ(a.logical_peak_bytes, before.logical_peak_bytes);
  EXPECT_EQ(a.fallback_trace, before.fallback_trace);
}

}  // namespace
}  // namespace usep
