#include "algo/planner_registry.h"

#include <gtest/gtest.h>

namespace usep {
namespace {

TEST(PlannerRegistryTest, MakePlannerReturnsMatchingNames) {
  for (const PlannerKind kind :
       {PlannerKind::kRatioGreedy, PlannerKind::kDeDp, PlannerKind::kDeDpo,
        PlannerKind::kDeDpoRg, PlannerKind::kDeGreedy,
        PlannerKind::kDeGreedyRg, PlannerKind::kNaiveRatioGreedy,
        PlannerKind::kExact, PlannerKind::kOnlineDp,
        PlannerKind::kOnlineGreedy, PlannerKind::kDeDpoRgLs,
        PlannerKind::kDeGreedyRgLs}) {
    const std::unique_ptr<Planner> planner = MakePlanner(kind);
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(planner->name(), PlannerKindName(kind));
  }
}

TEST(PlannerRegistryTest, LookupByNameIsCaseInsensitive) {
  const auto planner = MakePlannerByName("dedpo+rg");
  ASSERT_TRUE(planner.ok());
  EXPECT_EQ((*planner)->name(), "DeDPO+RG");
}

TEST(PlannerRegistryTest, LookupTrimsWhitespace) {
  const auto planner = MakePlannerByName("  DeGreedy  ");
  ASSERT_TRUE(planner.ok());
  EXPECT_EQ((*planner)->name(), "DeGreedy");
}

TEST(PlannerRegistryTest, UnknownNameIsNotFound) {
  const auto planner = MakePlannerByName("SimulatedAnnealing");
  EXPECT_FALSE(planner.ok());
  EXPECT_EQ(planner.status().code(), StatusCode::kNotFound);
}

TEST(PlannerRegistryTest, PaperPlannersAreTheSixEvaluated) {
  const std::vector<PlannerKind> kinds = PaperPlannerKinds();
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds.front(), PlannerKind::kRatioGreedy);
  // DeDP appears in the paper set but not the scalability set.
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), PlannerKind::kDeDp),
            kinds.end());
  const std::vector<PlannerKind> scalable = ScalablePlannerKinds();
  EXPECT_EQ(std::find(scalable.begin(), scalable.end(), PlannerKind::kDeDp),
            scalable.end());
  EXPECT_EQ(scalable.size(), 5u);
}

}  // namespace
}  // namespace usep
