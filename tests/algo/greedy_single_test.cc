#include "algo/greedy_single.h"

#include "core/schedule.h"

#include <gtest/gtest.h>

#include "core/instance_builder.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

std::vector<UserCandidate> AllPositiveCandidates(const Instance& instance,
                                                 UserId u) {
  std::vector<UserCandidate> candidates;
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (instance.utility(v, u) > 0.0) {
      candidates.push_back(UserCandidate{v, instance.utility(v, u)});
    }
  }
  return candidates;
}

void ExpectFeasibleSingle(const Instance& instance, UserId u,
                          const SingleResult& result) {
  Cost route = 0;
  if (!result.schedule.empty()) {
    route = instance.UserToEventCost(u, result.schedule.front());
    for (size_t i = 1; i < result.schedule.size(); ++i) {
      ASSERT_TRUE(
          instance.CanFollow(result.schedule[i - 1], result.schedule[i]))
          << "events " << result.schedule[i - 1] << " -> "
          << result.schedule[i];
      route += instance.EventTravelCost(result.schedule[i - 1],
                                        result.schedule[i]);
    }
    route += instance.EventToUserCost(result.schedule.back(), u);
  }
  EXPECT_EQ(route, result.route_cost);
  EXPECT_LE(route, instance.user(u).budget);
}

TEST(GreedySingleTest, EmptyCandidates) {
  const Instance instance = testing::MakeTable1Instance();
  const SingleResult result = GreedySingle(instance, 0, {});
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.utility, 0.0);
}

TEST(GreedySingleTest, TakesBothCompatibleEvents) {
  const Instance instance = testing::MakeTinyMatrixInstance();
  const SingleResult result =
      GreedySingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0, 1}));
  EXPECT_DOUBLE_EQ(result.utility, 1.4);
  EXPECT_EQ(result.route_cost, 11);
}

TEST(GreedySingleTest, Lemma1FilterDropsUnreachableEvents) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1);
  builder.AddEvent({20, 30}, 1);
  builder.AddUser(10);
  builder.SetUtility(0, 0, 0.9);
  builder.SetUtility(1, 0, 0.9);
  builder.SetMetricLayout(MetricKind::kManhattan, {{2, 0}, {50, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const SingleResult result =
      GreedySingle(instance, 0, AllPositiveCandidates(instance, 0));
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0}))
      << "event 1's round trip (100) exceeds the budget";
}

TEST(GreedySingleTest, GreedyCanBeSuboptimal) {
  // The greedy picks the best-ratio event first, which here blocks the
  // two-event optimum: one central cheap event vs two conflicting-with-it
  // events on the sides.
  InstanceBuilder builder;
  builder.AddEvent({0, 30}, 1);   // Central: overlaps both others.
  builder.AddEvent({0, 10}, 1);   // Early.
  builder.AddEvent({20, 30}, 1);  // Late.
  builder.AddUser(60);
  builder.SetUtility(0, 0, 0.9);
  builder.SetUtility(1, 0, 0.5);
  builder.SetUtility(2, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan,
                          {{1, 0}, {10, 0}, {10, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const std::vector<UserCandidate> candidates =
      AllPositiveCandidates(instance, 0);

  const SingleResult greedy = GreedySingle(instance, 0, candidates);
  const SingleResult optimal = DpSingle(instance, 0, candidates);
  // ratio(e0) = 0.9/2 > ratio(e1) = 0.5/20, so greedy grabs e0 and is stuck.
  EXPECT_EQ(greedy.schedule, (std::vector<EventId>{0}));
  EXPECT_DOUBLE_EQ(greedy.utility, 0.9);
  // The DP finds {e1, e2}: cost 10 + 0 + 10 = 20 <= 60, utility 1.0.
  EXPECT_DOUBLE_EQ(optimal.utility, 1.0);
}

TEST(GreedySingleTest, BudgetShrinkInvalidatesStaleCandidates) {
  // Three disjoint events a [0,10], b [20,30], c [40,50]; user at origin
  // with budget 13.  b (highest ratio) goes first, then both gaps push a
  // valid candidate (a and c, inc_cost 6 each, route 4+6 = 10 <= 13).
  // Inserting a (better ratio) raises the route to 10, so c's queued
  // candidate is stale on pop (10 + 6 > 13) and must be dropped after a
  // rescan — not inserted in violation of the budget.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 1, "a");
  builder.AddEvent({20, 30}, 1, "b");
  builder.AddEvent({40, 50}, 1, "c");
  builder.AddUser(13);
  builder.SetUtility(0, 0, 0.6);   // a
  builder.SetUtility(1, 0, 0.9);   // b
  builder.SetUtility(2, 0, 0.55);  // c
  builder.SetMetricLayout(MetricKind::kManhattan,
                          {{5, 0}, {2, 0}, {5, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  const SingleResult result =
      GreedySingle(instance, 0, AllPositiveCandidates(instance, 0));
  ExpectFeasibleSingle(instance, 0, result);
  EXPECT_EQ(result.schedule, (std::vector<EventId>{0, 1}));
  EXPECT_EQ(result.route_cost, 10);
}

class GreedySingleRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedySingleRandomTest, AlwaysFeasibleAndNeverBeatsDp) {
  GeneratorConfig config = testing::SmallRandomConfig(GetParam());
  config.num_events = 8;
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const std::vector<UserCandidate> candidates =
        AllPositiveCandidates(*instance, u);
    const SingleResult greedy = GreedySingle(*instance, u, candidates);
    const SingleResult dp = DpSingle(*instance, u, candidates);
    ExpectFeasibleSingle(*instance, u, greedy);
    EXPECT_LE(greedy.utility, dp.utility + 1e-9)
        << "greedy beat the optimal DP? user " << u << " seed " << GetParam();
    // No duplicate events.
    std::vector<EventId> sorted = greedy.schedule;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_P(GreedySingleRandomTest, GreedyIsMaximal) {
  // After GreedySingle finishes, no remaining candidate fits: Lemma 3 says
  // candidates are exhausted, so the schedule is maximal.
  const GeneratorConfig config = testing::SmallRandomConfig(GetParam() + 99);
  const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const std::vector<UserCandidate> candidates =
        AllPositiveCandidates(*instance, u);
    const SingleResult result = GreedySingle(*instance, u, candidates);

    Schedule schedule(u);
    for (const EventId v : result.schedule) {
      ASSERT_TRUE(schedule.TryInsert(*instance, v));
    }
    for (const UserCandidate& candidate : candidates) {
      if (schedule.Contains(candidate.event)) continue;
      const auto insertion = schedule.FindInsertion(*instance, candidate.event);
      if (!insertion.has_value()) continue;
      EXPECT_GT(schedule.route_cost() + insertion->inc_cost,
                instance->user(u).budget)
          << "event " << candidate.event << " still fits for user " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySingleRandomTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace usep
