#include "algo/min_attendance.h"

#include <gtest/gtest.h>

#include "algo/dedpo.h"
#include "core/instance_builder.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// After enforcement: every event has 0 or >= its minimum attendees, and the
// planning still satisfies all USEP constraints.
void ExpectEnforced(const Instance& instance,
                    const std::vector<int>& min_attendance,
                    const Planning& planning) {
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const int attending = planning.assigned_count(v);
    EXPECT_TRUE(attending == 0 || attending >= min_attendance[v])
        << "event " << v << " has " << attending << " of "
        << min_attendance[v];
  }
  EXPECT_TRUE(ValidatePlanning(instance, planning).ok());
}

TEST(MinAttendanceTest, NoMinimumsIsANoOp) {
  const Instance instance = testing::MakeTable1Instance();
  PlannerResult result = DeDpoPlanner().Plan(instance);
  const double utility = result.planning.total_utility();
  const MinAttendanceReport report = EnforceMinimumAttendance(
      instance, {0, 0, 0, 0}, MinAttendanceOptions(), &result.planning);
  EXPECT_TRUE(report.cancelled.empty());
  EXPECT_EQ(report.assignments_removed, 0);
  EXPECT_DOUBLE_EQ(result.planning.total_utility(), utility);
}

TEST(MinAttendanceTest, CancelsUnderAttendedEvent) {
  // One event with two interested users, but a minimum of 3.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 5);
  builder.AddUser(100);
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.8);
  builder.SetUtility(0, 1, 0.6);
  builder.SetMetricLayout(MetricKind::kManhattan, {{0, 0}}, {{1, 0}, {2, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  ASSERT_TRUE(planning.TryAssign(0, 1));

  const MinAttendanceReport report = EnforceMinimumAttendance(
      instance, {3}, MinAttendanceOptions(), &planning);
  EXPECT_EQ(report.cancelled, (std::vector<EventId>{0}));
  EXPECT_EQ(report.assignments_removed, 2);
  EXPECT_EQ(planning.total_assignments(), 0);
  EXPECT_DOUBLE_EQ(report.utility_before, 1.4);
  // 0.8 + 0.6 - 0.8 - 0.6 leaves sub-ulp residue in the incremental total.
  EXPECT_NEAR(report.utility_after, 0.0, 1e-12);
}

TEST(MinAttendanceTest, ReaugmentationReinvestsFreedBudget) {
  // Two conflicting events; user 0 initially attends A (min 2, only 1
  // attendee -> cancelled); re-augmentation should move them to B.
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 3, "A");
  builder.AddEvent({5, 15}, 3, "B");  // Overlaps A.
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.9);
  builder.SetUtility(1, 0, 0.5);
  builder.SetMetricLayout(MetricKind::kManhattan, {{1, 0}, {2, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));

  const MinAttendanceReport report = EnforceMinimumAttendance(
      instance, {2, 1}, MinAttendanceOptions(), &planning);
  EXPECT_EQ(report.cancelled, (std::vector<EventId>{0}));
  EXPECT_EQ(report.assignments_readded, 1);
  EXPECT_TRUE(planning.schedule(0).Contains(1));
  EXPECT_DOUBLE_EQ(planning.total_utility(), 0.5);
}

TEST(MinAttendanceTest, CancelledEventsAreNeverRefilled) {
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 5, "doomed");
  builder.AddUser(100);
  builder.SetUtility(0, 0, 0.9);
  builder.SetMetricLayout(MetricKind::kManhattan, {{1, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));
  MinAttendanceOptions options;
  options.reaugment_with_rg = true;
  EnforceMinimumAttendance(instance, {2}, options, &planning);
  EXPECT_EQ(planning.assigned_count(0), 0)
      << "the cancelled event must stay cancelled even though the freed "
         "user could refill it";
}

TEST(MinAttendanceTest, CascadingCancellations) {
  // User can afford only one event.  Event A gets them initially; A's
  // minimum kills it; re-augmentation moves them to B; B's minimum then
  // kills B too (stability loop).
  InstanceBuilder builder;
  builder.AddEvent({0, 10}, 3, "A");
  builder.AddEvent({20, 30}, 3, "B");
  builder.AddUser(6);
  builder.SetUtility(0, 0, 0.9);
  builder.SetUtility(1, 0, 0.8);
  builder.SetMetricLayout(MetricKind::kManhattan, {{2, 0}, {3, 0}}, {{0, 0}});
  const Instance instance = *std::move(builder).Build();
  Planning planning(instance);
  ASSERT_TRUE(planning.TryAssign(0, 0));  // Round trip 4; B would add 2+... .

  const MinAttendanceReport report = EnforceMinimumAttendance(
      instance, {2, 2}, MinAttendanceOptions(), &planning);
  EXPECT_EQ(report.cancelled.size(), 2u);
  EXPECT_EQ(planning.total_assignments(), 0);
  ExpectEnforced(instance, {2, 2}, planning);
}

class MinAttendanceRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinAttendanceRandomTest, EnforcementHoldsOnPlannerOutputs) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam()));
  ASSERT_TRUE(instance.ok());
  PlannerResult result = DeDpoPlanner().Plan(*instance);

  // A moderate minimum for every event.
  const std::vector<int> minimums(instance->num_events(), 3);
  for (const bool reaugment : {false, true}) {
    Planning planning = result.planning;
    MinAttendanceOptions options;
    options.reaugment_with_rg = reaugment;
    const MinAttendanceReport report =
        EnforceMinimumAttendance(*instance, minimums, options, &planning);
    ExpectEnforced(*instance, minimums, planning);
    EXPECT_NEAR(report.utility_after, planning.total_utility(), 1e-9);
    if (reaugment) {
      EXPECT_GE(report.assignments_readded, 0);
    } else {
      EXPECT_EQ(report.assignments_readded, 0);
    }
  }
}

TEST_P(MinAttendanceRandomTest, ReaugmentationNeverHurts) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(testing::MediumRandomConfig(GetParam() + 60));
  ASSERT_TRUE(instance.ok());
  const PlannerResult base = DeDpoPlanner().Plan(*instance);
  const std::vector<int> minimums(instance->num_events(), 4);

  Planning without = base.planning;
  MinAttendanceOptions no_reaugment;
  no_reaugment.reaugment_with_rg = false;
  EnforceMinimumAttendance(*instance, minimums, no_reaugment, &without);

  Planning with = base.planning;
  EnforceMinimumAttendance(*instance, minimums, MinAttendanceOptions(),
                           &with);
  EXPECT_GE(with.total_utility(), without.total_utility() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinAttendanceRandomTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace usep
