// Deadline / cancellation / budget coverage for every registered planner:
// whatever limit fires, a planner must return a *valid* planning and report
// why it stopped — never abort the process.

#include <gtest/gtest.h>

#include <memory>

#include "algo/plan_context.h"
#include "algo/planner_registry.h"
#include "common/memhook.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

std::vector<PlannerKind> AllPlannerKinds() {
  return {PlannerKind::kRatioGreedy,      PlannerKind::kDeDp,
          PlannerKind::kDeDpo,            PlannerKind::kDeDpoRg,
          PlannerKind::kDeGreedy,         PlannerKind::kDeGreedyRg,
          PlannerKind::kNaiveRatioGreedy, PlannerKind::kExact,
          PlannerKind::kOnlineDp,         PlannerKind::kOnlineGreedy,
          PlannerKind::kDeDpoRgLs,        PlannerKind::kDeGreedyRgLs};
}

Instance GuardTestInstance() {
  // Mid-sized so every planner's hot loop actually spins, yet small enough
  // for Exact's enumeration guard checks to run fast.
  GeneratorConfig config = testing::MediumRandomConfig(7);
  config.num_events = 12;
  config.num_users = 30;
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok());
  return *std::move(instance);
}

TEST(PlanGuardUnitTest, UnlimitedContextNeverStops) {
  const PlanContext context;
  PlanGuard guard(context);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(guard.ShouldStop());
  }
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.reason(), Termination::kCompleted);
  EXPECT_EQ(guard.nodes(), 10'000);
}

TEST(PlanGuardUnitTest, NodeBudgetIsExact) {
  PlanContext context;
  context.max_nodes = 5;
  PlanGuard guard(context);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(guard.ShouldStop()) << "node " << i;
  }
  EXPECT_TRUE(guard.ShouldStop());
  EXPECT_EQ(guard.reason(), Termination::kNodeBudget);
  EXPECT_TRUE(guard.ShouldStop()) << "stays stopped";
}

TEST(PlanGuardUnitTest, ExpiredDeadlineStopsOnTheFirstCall) {
  PlanContext context;
  context.deadline = Deadline::AfterMillis(0.0);
  PlanGuard guard(context);
  EXPECT_TRUE(guard.ShouldStop());
  EXPECT_EQ(guard.reason(), Termination::kDeadline);
}

TEST(PlanGuardUnitTest, CancellationIsObservedWithinAStride) {
  PlanContext context;
  CancellationToken shared_handle = context.cancel;
  PlanGuard guard(context);
  EXPECT_FALSE(guard.ShouldStop());
  shared_handle.Cancel();  // Copies share the flag.
  bool stopped = false;
  for (int i = 0; i < PlanGuard::kStride + 1 && !stopped; ++i) {
    stopped = guard.ShouldStop();
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(guard.reason(), Termination::kCancelled);
}

TEST(PlanGuardUnitTest, ForceStopPinsTheReason) {
  const PlanContext context;
  PlanGuard guard(context);
  EXPECT_TRUE(guard.ForceStop(Termination::kInjectedFault));
  EXPECT_TRUE(guard.ShouldStop());
  EXPECT_EQ(guard.reason(), Termination::kInjectedFault);
}

TEST(TerminationNameTest, NamesAreStable) {
  EXPECT_STREQ(TerminationName(Termination::kCompleted), "completed");
  EXPECT_STREQ(TerminationName(Termination::kDeadline), "deadline");
  EXPECT_STREQ(TerminationName(Termination::kCancelled), "cancelled");
  EXPECT_STREQ(TerminationName(Termination::kNodeBudget), "node-budget");
  EXPECT_STREQ(TerminationName(Termination::kMemoryBudget), "memory-budget");
  EXPECT_STREQ(TerminationName(Termination::kInjectedFault), "injected-fault");
}

class EveryPlannerGuardTest : public ::testing::TestWithParam<PlannerKind> {};

TEST_P(EveryPlannerGuardTest, ExpiredDeadlineReturnsValidPlanningImmediately) {
  const Instance instance = GuardTestInstance();
  const std::unique_ptr<Planner> planner = MakePlanner(GetParam());
  PlanContext context;
  context.deadline = Deadline::AfterMillis(0.0);
  const PlannerResult result = planner->Plan(instance, context);
  EXPECT_EQ(result.termination, Termination::kDeadline)
      << planner->name() << " ignored an expired deadline";
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok())
      << planner->name() << " returned an invalid planning when interrupted";
}

TEST_P(EveryPlannerGuardTest, PreCancelledTokenReturnsValidPlanning) {
  const Instance instance = GuardTestInstance();
  const std::unique_ptr<Planner> planner = MakePlanner(GetParam());
  PlanContext context;
  context.cancel.Cancel();
  const PlannerResult result = planner->Plan(instance, context);
  EXPECT_EQ(result.termination, Termination::kCancelled) << planner->name();
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok())
      << planner->name();
}

TEST_P(EveryPlannerGuardTest, TinyNodeBudgetReturnsValidPlanning) {
  const Instance instance = GuardTestInstance();
  const std::unique_ptr<Planner> planner = MakePlanner(GetParam());
  PlanContext context;
  context.max_nodes = 3;
  const PlannerResult result = planner->Plan(instance, context);
  EXPECT_EQ(result.termination, Termination::kNodeBudget) << planner->name();
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok())
      << planner->name();
}

TEST_P(EveryPlannerGuardTest, DefaultContextRunsToCompletion) {
  // Table 1 keeps Exact tractable; every planner must report kCompleted
  // when nothing is constrained.
  const Instance instance = testing::MakeTable1Instance();
  const std::unique_ptr<Planner> planner = MakePlanner(GetParam());
  const PlannerResult result = planner->Plan(instance);
  EXPECT_EQ(result.termination, Termination::kCompleted) << planner->name();
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok())
      << planner->name();
  EXPECT_GT(result.planning.total_utility(), 0.0) << planner->name();
}

TEST_P(EveryPlannerGuardTest, InterruptedUtilityNeverExceedsUnconstrained) {
  // Graceful degradation must degrade: a budget-bound run returns a planning
  // at most as good as (and validated like) the run-to-completion one.
  const Instance instance = testing::MakeTable1Instance();
  const std::unique_ptr<Planner> planner = MakePlanner(GetParam());
  const PlannerResult full = planner->Plan(instance);
  PlanContext context;
  context.max_nodes = 10;
  const PlannerResult bounded = planner->Plan(instance, context);
  EXPECT_LE(bounded.planning.total_utility(),
            full.planning.total_utility() + 1e-9)
      << planner->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllPlanners, EveryPlannerGuardTest, ::testing::ValuesIn(AllPlannerKinds()),
    [](const ::testing::TestParamInfo<PlannerKind>& info) {
      std::string name = PlannerKindName(info.param);
      for (char& c : name) {
        if (c == '+' || c == '-') c = '_';
      }
      return name;
    });

TEST(MemoryBudgetTest, TinyHeapBudgetStopsPlannersWhenHookIsActive) {
  // Only meaningful in binaries linking usep_memhook (this test does).
  if (!memhook::IsActive()) {
    GTEST_SKIP() << "allocation hook not linked";
  }
  const Instance instance = GuardTestInstance();
  PlanContext context;
  context.max_memory_bytes = 1;  // Below any real process heap.
  const std::unique_ptr<Planner> planner =
      MakePlanner(PlannerKind::kRatioGreedy);
  const PlannerResult result = planner->Plan(instance, context);
  EXPECT_EQ(result.termination, Termination::kMemoryBudget);
  EXPECT_TRUE(ValidatePlanning(instance, result.planning).ok());
}

}  // namespace
}  // namespace usep
