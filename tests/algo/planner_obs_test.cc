// Integration tests of the planner instrumentation: spans cover the planner
// phases with sane nesting, metrics agree with the PlannerStats the planner
// itself reported, and a null-sink context records nothing at all.

#include "algo/planner_obs.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/fallback_planner.h"
#include "algo/local_search.h"
#include "algo/planner_registry.h"
#include "gen/synthetic_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

using testing::MakeTable1Instance;
using testing::MediumRandomConfig;

int CountSpans(const std::vector<obs::TraceEvent>& events,
               const std::string& name) {
  return static_cast<int>(
      std::count_if(events.begin(), events.end(),
                    [&name](const obs::TraceEvent& event) {
                      return event.phase == 'X' && event.name == name;
                    }));
}

const obs::TraceEvent* FindSpan(const std::vector<obs::TraceEvent>& events,
                                const std::string& name) {
  for (const obs::TraceEvent& event : events) {
    if (event.phase == 'X' && event.name == name) return &event;
  }
  return nullptr;
}

bool Contains(const obs::TraceEvent& outer, const obs::TraceEvent& inner) {
  return outer.ts_us <= inner.ts_us + 1e-3 &&
         outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us - 1e-3;
}

TEST(PlannerObsTest, NullContextRecordsNothing) {
  const Instance instance = MakeTable1Instance();
  PlanContext context;  // trace/metrics null — the default.
  for (const char* name : {"Exact", "DeDPO+RG", "RatioGreedy", "Online-DP"}) {
    StatusOr<std::unique_ptr<Planner>> planner = MakePlannerByName(name);
    ASSERT_TRUE(planner.ok()) << name;
    const PlannerResult result = (*planner)->Plan(instance, context);
    EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning));
  }
  // Nothing to assert on sinks — they don't exist.  The real check is that
  // the above does not crash and (see below) that enabling sinks changes
  // observations, not plannings.
}

TEST(PlannerObsTest, PlannersEmitPhaseSpansWithNesting) {
  const Instance instance = MakeTable1Instance();
  obs::TraceRecorder recorder;
  PlanContext context;
  context.trace = &recorder;

  MakePlannerByName("Exact").value()->Plan(instance, context);
  MakePlannerByName("DeDP").value()->Plan(instance, context);
  MakePlannerByName("RatioGreedy").value()->Plan(instance, context);

  const std::vector<obs::TraceEvent> events = recorder.Events();
  // Three distinct planner phases (well above the >= 3 acceptance bar).
  EXPECT_EQ(CountSpans(events, "plan/Exact"), 1);
  EXPECT_EQ(CountSpans(events, "plan/DeDP"), 1);
  EXPECT_EQ(CountSpans(events, "plan/RatioGreedy"), 1);

  // Exact's sub-phases nest inside its plan span on the same thread.
  const obs::TraceEvent* exact = FindSpan(events, "plan/Exact");
  ASSERT_NE(exact, nullptr);
  for (const char* phase :
       {"exact/candidate-generation", "exact/state-space",
        "exact/materialize"}) {
    const obs::TraceEvent* sub = FindSpan(events, phase);
    ASSERT_NE(sub, nullptr) << phase;
    EXPECT_EQ(sub->tid, exact->tid) << phase;
    EXPECT_TRUE(Contains(*exact, *sub)) << phase;
  }

  // DeDP's phases likewise.
  const obs::TraceEvent* dedp = FindSpan(events, "plan/DeDP");
  ASSERT_NE(dedp, nullptr);
  for (const char* phase : {"dedp/mu-init", "dedp/dp-fill", "dedp/assemble"}) {
    const obs::TraceEvent* sub = FindSpan(events, phase);
    ASSERT_NE(sub, nullptr) << phase;
    EXPECT_TRUE(Contains(*dedp, *sub)) << phase;
  }

  // RatioGreedy's champion phases.
  EXPECT_NE(FindSpan(events, "rg/init-champions"), nullptr);
  EXPECT_NE(FindSpan(events, "rg/heap-loop"), nullptr);

  // Every span carries a meaningful duration and the plan spans carry their
  // termination.
  for (const obs::TraceEvent& event : events) {
    if (event.phase != 'X') continue;
    EXPECT_GE(event.dur_us, 0.0);
  }
  bool found_termination = false;
  for (const auto& [key, value] : exact->args) {
    if (key == "termination") {
      found_termination = true;
      EXPECT_EQ(value, "\"completed\"");
    }
  }
  EXPECT_TRUE(found_termination);
}

TEST(PlannerObsTest, LocalSearchAndFallbackEmitSpans) {
  const Instance instance = MakeTable1Instance();
  obs::TraceRecorder recorder;
  PlanContext context;
  context.trace = &recorder;

  MakePlannerByName("DeDPO+RG+LS").value()->Plan(instance, context);
  const std::vector<obs::TraceEvent> ls_events = recorder.Events();
  EXPECT_EQ(CountSpans(ls_events, "plan/LocalSearch"), 1);
  EXPECT_GE(CountSpans(ls_events, "local-search/round"), 1);

  // A fresh recorder for the fallback run, so plan/DeDPO below can only
  // come from the chain's first rung.
  obs::TraceRecorder fallback_recorder;
  context.trace = &fallback_recorder;
  FallbackPlanner::FromSpec("DeDPO+RG->RatioGreedy")
      .value()
      ->Plan(instance, context);

  const std::vector<obs::TraceEvent> events = fallback_recorder.Events();
  EXPECT_EQ(CountSpans(events, "plan/Fallback"), 1);
  // The chain completed on its first rung, so exactly one rung span.
  EXPECT_EQ(CountSpans(events, "fallback/rung"), 1);
  // The rung itself ran DeDPO, whose plan span nests inside the rung span.
  const obs::TraceEvent* rung = FindSpan(events, "fallback/rung");
  const obs::TraceEvent* dedpo = FindSpan(events, "plan/DeDPO");
  ASSERT_NE(rung, nullptr);
  ASSERT_NE(dedpo, nullptr);
  EXPECT_TRUE(Contains(*rung, *dedpo));
}

TEST(PlannerObsTest, MetricsAgreeWithPlannerStats) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(MediumRandomConfig(7));
  ASSERT_TRUE(instance.ok());
  obs::MetricsRegistry registry;
  PlanContext context;
  context.metrics = &registry;

  const std::unique_ptr<Planner> planner =
      MakePlannerByName("DeDPO+RG").value();
  const PlannerResult first = planner->Plan(*instance, context);
  const PlannerResult second = planner->Plan(*instance, context);

  const std::string prefix = "usep.planner.DeDPO+RG";
  const obs::Counter* runs = registry.FindCounter(prefix + ".runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->Value(), 2);
  EXPECT_EQ(registry.FindCounter("usep.planner.runs")->Value(), 2);
  EXPECT_EQ(registry.FindCounter(prefix + ".iterations")->Value(),
            first.stats.iterations + second.stats.iterations);
  EXPECT_EQ(registry.FindCounter(prefix + ".dp_cells")->Value(),
            first.stats.dp_cells + second.stats.dp_cells);
  EXPECT_EQ(
      registry.FindCounter(prefix + ".terminations.completed")->Value(), 2);

  const obs::Histogram* wall = registry.FindHistogram(prefix + ".wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->Count(), 2);
  EXPECT_NEAR(wall->Sum(),
              (first.stats.wall_seconds + second.stats.wall_seconds) * 1e3,
              1e-6);

  const obs::Gauge* peak =
      registry.FindGauge(prefix + ".logical_peak_bytes");
  ASSERT_NE(peak, nullptr);
  EXPECT_DOUBLE_EQ(peak->Value(),
                   static_cast<double>(second.stats.logical_peak_bytes));
}

TEST(PlannerObsTest, SinksDoNotChangeThePlanning) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(MediumRandomConfig(11));
  ASSERT_TRUE(instance.ok());
  const std::unique_ptr<Planner> planner =
      MakePlannerByName("DeGreedy+RG").value();

  const PlannerResult bare = planner->Plan(*instance, PlanContext{});

  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  PlanContext observed_context;
  observed_context.trace = &recorder;
  observed_context.metrics = &registry;
  const PlannerResult observed = planner->Plan(*instance, observed_context);

  EXPECT_DOUBLE_EQ(bare.planning.total_utility(),
                   observed.planning.total_utility());
  EXPECT_EQ(bare.planning.total_assignments(),
            observed.planning.total_assignments());
  EXPECT_EQ(bare.stats.iterations, observed.stats.iterations);
  EXPECT_GT(recorder.size(), 0u);
}

}  // namespace
}  // namespace usep
