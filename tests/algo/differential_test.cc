// Differential property testing: ~200 randomized small instances spanning
// the generator's parameter space (tight/loose capacity, tight/loose
// budgets, conflict-light/heavy timetables, zero-utility-dense matrices),
// with EVERY registered planner run on every instance.  Three properties
// must hold universally:
//
//   1. Validity: each planner's planning passes the Definition 2 constraint
//      checker (capacity, budget, feasibility, positive utility).
//   2. Optimality bound: no planner beats the exhaustive Exact optimum.
//   3. Determinism: re-running a planner on the same instance reproduces
//      the identical planning (the foundation the parallel engine's
//      bit-for-bit guarantee rests on; see parallel_test.cc for the
//      multi-thread half of that story).
//
// This is the safety net that lets the parallel refactors in
// algo/parallel.{h,cc} touch planner inner loops: any semantic drift
// anywhere in the planner zoo trips one of these properties.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

// One corner of the generator's parameter space.  Fields mirror the Table 7
// knobs the paper varies; kZeroUtilityDense uses the power-law utility
// family (most mu near zero) to stress the mu > 0 arrangement constraint.
struct Regime {
  const char* name;
  double capacity_mean;
  double budget_factor;
  double conflict_ratio;
  const char* utility_distribution;
};

constexpr Regime kRegimes[] = {
    {"baseline", 2.0, 2.0, 0.3, "uniform"},
    {"tight-capacity", 1.0, 2.0, 0.3, "uniform"},
    {"tight-budget", 3.0, 0.5, 0.25, "normal"},
    {"conflict-heavy", 2.0, 2.0, 0.85, "uniform"},
    {"zero-utility-dense", 2.0, 2.0, 0.3, "power:4"},
};

// All registered planner kinds, including the online and local-search
// decorated families the figure benches skip.
std::vector<PlannerKind> AllPlannerKinds() {
  return {PlannerKind::kRatioGreedy,      PlannerKind::kDeDp,
          PlannerKind::kDeDpo,            PlannerKind::kDeDpoRg,
          PlannerKind::kDeGreedy,         PlannerKind::kDeGreedyRg,
          PlannerKind::kNaiveRatioGreedy, PlannerKind::kExact,
          PlannerKind::kOnlineDp,         PlannerKind::kOnlineGreedy,
          PlannerKind::kDeDpoRgLs,        PlannerKind::kDeGreedyRgLs};
}

Instance MakeRegimeInstance(const Regime& regime, uint64_t seed) {
  GeneratorConfig config = testing::SmallRandomConfig(seed);
  config.capacity_mean = regime.capacity_mean;
  config.budget_factor = regime.budget_factor;
  config.conflict_ratio = regime.conflict_ratio;
  config.utility_distribution = regime.utility_distribution;
  StatusOr<Instance> instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

// 40 seeds x 5 regimes = 200 distinct instances.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EveryPlannerValidAndBoundedByExact) {
  for (const Regime& regime : kRegimes) {
    const Instance instance = MakeRegimeInstance(regime, GetParam());
    const std::string where =
        std::string(regime.name) + " seed=" + std::to_string(GetParam());

    const PlannerResult exact = ExactPlanner().Plan(instance);
    ASSERT_EQ(exact.termination, Termination::kCompleted) << where;
    ASSERT_TRUE(testing::IsValidPlanning(instance, exact.planning)) << where;
    const double optimum = exact.planning.total_utility();

    for (const PlannerKind kind : AllPlannerKinds()) {
      const std::unique_ptr<Planner> planner = MakePlanner(kind);
      const PlannerResult result = planner->Plan(instance);
      EXPECT_TRUE(testing::IsValidPlanning(instance, result.planning))
          << PlannerKindName(kind) << " on " << where;
      EXPECT_LE(result.planning.total_utility(), optimum + 1e-9)
          << PlannerKindName(kind) << " beat the exact optimum on " << where;
      // Same planner, same instance: byte-identical planning.
      const PlannerResult again = planner->Plan(instance);
      EXPECT_EQ(result.planning.ToString(), again.planning.ToString())
          << PlannerKindName(kind) << " is nondeterministic on " << where;
    }
  }
}

// The CandidateIndex is an accelerator, not an algorithm change: every
// planner in the greedy family must reproduce the seed's full-rescan
// plannings bit-for-bit, with the index on, at 1, 2, and 8 threads.  This is
// the determinism contract docs/PERFORMANCE.md promises.
TEST_P(DifferentialTest, IndexedPlannersMatchLegacyScans) {
  const std::vector<PlannerKind> indexed_kinds = {
      PlannerKind::kRatioGreedy, PlannerKind::kNaiveRatioGreedy,
      PlannerKind::kDeDpoRg,     PlannerKind::kDeGreedyRg,
      PlannerKind::kDeDpoRgLs,   PlannerKind::kDeGreedyRgLs};
  for (const Regime& regime : kRegimes) {
    const Instance instance = MakeRegimeInstance(regime, GetParam());
    const std::string where =
        std::string(regime.name) + " seed=" + std::to_string(GetParam());
    for (const PlannerKind kind : indexed_kinds) {
      const PlannerResult legacy =
          MakeLegacyScanPlanner(kind, ParallelConfig())->Plan(instance);
      const std::string want = legacy.planning.ToString();
      for (const int threads : {1, 2, 8}) {
        ParallelConfig parallel;
        parallel.num_threads = threads;
        const PlannerResult indexed =
            MakePlanner(kind, parallel)->Plan(instance);
        EXPECT_EQ(indexed.planning.ToString(), want)
            << PlannerKindName(kind) << " with the candidate index at "
            << threads << " thread(s) diverged from the legacy scan on "
            << where;
      }
    }
  }
}

// The state-space Exact core (PR7) against the legacy depth-first
// enumerator it replaced: on every instance the legacy core certifies, the
// new core must certify too and produce the exact same objective.  The
// comparison refolds both objectives the way the search cores accumulate
// (per-user left-folds summed in user order), so bit equality — not a
// tolerance — is the assertion; both cores maximize over the identical set
// of fold values, so even utility ties cannot make the bits differ.
TEST_P(DifferentialTest, StateSpaceExactMatchesLegacyWhereLegacyCertifies) {
  ExactPlanner::Options legacy_options;
  legacy_options.use_legacy_exact = true;
  for (const Regime& regime : kRegimes) {
    const Instance instance = MakeRegimeInstance(regime, GetParam());
    const std::string where =
        std::string(regime.name) + " seed=" + std::to_string(GetParam());

    const PlannerResult legacy = ExactPlanner(legacy_options).Plan(instance);
    if (!legacy.stats.certified_optimal) continue;  // Legacy gave up: moot.

    const PlannerResult fresh = ExactPlanner().Plan(instance);
    ASSERT_TRUE(fresh.stats.certified_optimal) << where;
    ASSERT_TRUE(testing::IsValidPlanning(instance, fresh.planning)) << where;

    const auto refold = [&instance](const Planning& planning) {
      double total = 0.0;
      for (UserId u = 0; u < instance.num_users(); ++u) {
        double schedule_utility = 0.0;
        for (EventId v : planning.schedule(u).events()) {
          schedule_utility += instance.utility(v, u);
        }
        total += schedule_utility;
      }
      return total;
    };
    EXPECT_EQ(refold(fresh.planning), refold(legacy.planning)) << where;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace usep
