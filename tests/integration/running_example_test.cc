// The paper's running example (Examples 1-4, Tables 1 and 3-5) replayed on
// our geometry (Figure 1a's coordinates are only published as a picture; see
// testing/test_instances.h).  The inter-algorithm relationships the paper
// demonstrates must hold; the exact utility values are golden-tested against
// the exact solver.

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "core/validation.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  const Instance instance_ = testing::MakeTable1Instance();
};

TEST_F(RunningExampleTest, AllPlannersFeasible) {
  for (const PlannerKind kind : PaperPlannerKinds()) {
    const PlannerResult result = MakePlanner(kind)->Plan(instance_);
    const ValidationReport report =
        ValidatePlanning(instance_, result.planning);
    EXPECT_TRUE(report.ok()) << PlannerKindName(kind) << "\n"
                             << report.ToString();
  }
}

TEST_F(RunningExampleTest, PaperOrderingHolds) {
  // Example 2 vs 3 vs 4: RatioGreedy (3.6) < DeGreedy (4.5) <= DeDP (4.6)
  // in the paper; on our geometry the same ordering must hold.
  const double ratio_greedy = MakePlanner(PlannerKind::kRatioGreedy)
                                  ->Plan(instance_)
                                  .planning.total_utility();
  const double degreedy = MakePlanner(PlannerKind::kDeGreedy)
                              ->Plan(instance_)
                              .planning.total_utility();
  const double dedp =
      MakePlanner(PlannerKind::kDeDp)->Plan(instance_).planning.total_utility();
  EXPECT_LT(ratio_greedy, degreedy);
  EXPECT_LT(degreedy, dedp);
  EXPECT_NEAR(ratio_greedy, 3.6, 1e-9)
      << "the paper's Example 2 total utility";
}

TEST_F(RunningExampleTest, DeDpEqualsDeDpo) {
  const PlannerResult dedp = MakePlanner(PlannerKind::kDeDp)->Plan(instance_);
  const PlannerResult dedpo = MakePlanner(PlannerKind::kDeDpo)->Plan(instance_);
  for (UserId u = 0; u < instance_.num_users(); ++u) {
    EXPECT_EQ(dedp.planning.schedule(u).events(),
              dedpo.planning.schedule(u).events());
  }
}

TEST_F(RunningExampleTest, HalfApproximationAgainstExact) {
  const double optimum =
      ExactPlanner().Plan(instance_).planning.total_utility();
  for (const PlannerKind kind :
       {PlannerKind::kDeDp, PlannerKind::kDeDpo, PlannerKind::kDeDpoRg}) {
    const double utility =
        MakePlanner(kind)->Plan(instance_).planning.total_utility();
    EXPECT_GE(utility, 0.5 * optimum - 1e-9) << PlannerKindName(kind);
    EXPECT_LE(utility, optimum + 1e-9) << PlannerKindName(kind);
  }
}

// Golden values for this geometry, cross-checked against the exact solver
// and hand-traced runs.  If an algorithm change moves these, that is a
// behavioural change that needs review, not a flaky test.
TEST_F(RunningExampleTest, GoldenUtilities) {
  const double exact =
      ExactPlanner().Plan(instance_).planning.total_utility();
  const double ratio_greedy = MakePlanner(PlannerKind::kRatioGreedy)
                                  ->Plan(instance_)
                                  .planning.total_utility();
  const double dedpo = MakePlanner(PlannerKind::kDeDpo)
                           ->Plan(instance_)
                           .planning.total_utility();
  const double degreedy = MakePlanner(PlannerKind::kDeGreedy)
                              ->Plan(instance_)
                              .planning.total_utility();
  EXPECT_NEAR(exact, 4.5, 1e-9);
  EXPECT_NEAR(ratio_greedy, 3.6, 1e-9);
  EXPECT_NEAR(dedpo, 4.4, 1e-9);
  EXPECT_NEAR(degreedy, 4.1, 1e-9);
}

}  // namespace
}  // namespace usep
