// End-to-end property tests: generator (or EBSN simulator) -> every planner
// -> independent validation, across the Table 7 knobs.

#include <cctype>
#include <memory>

#include <gtest/gtest.h>

#include "algo/planner_registry.h"
#include "common/string_util.h"
#include "core/objective.h"
#include "core/validation.h"
#include "ebsn/meetup_simulator.h"
#include "gen/synthetic_generator.h"
#include "io/instance_io.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

struct PipelineCase {
  std::string label;
  GeneratorConfig config;
};

std::vector<PipelineCase> PipelineCases() {
  std::vector<PipelineCase> cases;
  const auto base = [] {
    GeneratorConfig config;
    config.num_events = 15;
    config.num_users = 40;
    config.capacity_mean = 4.0;
    config.grid_extent = 150;
    config.seed = 4242;
    return config;
  };

  {
    PipelineCase c{"defaults", base()};
    cases.push_back(c);
  }
  for (const double cr : {0.0, 0.5, 1.0}) {
    PipelineCase c{StrFormat("cr_%02d", static_cast<int>(cr * 100)), base()};
    c.config.conflict_ratio = cr;
    cases.push_back(c);
  }
  for (const double fb : {0.5, 5.0}) {
    PipelineCase c{StrFormat("fb_%02d", static_cast<int>(fb * 10)), base()};
    c.config.budget_factor = fb;
    cases.push_back(c);
  }
  for (const char* mu : {"normal", "power:0.5", "power:4"}) {
    PipelineCase c{std::string("mu_") + mu, base()};
    c.label = "mu_" + std::string(mu == std::string("power:0.5") ? "pow05"
                                  : mu == std::string("power:4") ? "pow4"
                                                                 : "normal");
    c.config.utility_distribution = mu;
    cases.push_back(c);
  }
  {
    PipelineCase c{"capacity_normal", base()};
    c.config.capacity_distribution = "normal";
    cases.push_back(c);
  }
  {
    PipelineCase c{"budget_normal", base()};
    c.config.budget_distribution = "normal";
    cases.push_back(c);
  }
  {
    PipelineCase c{"clique_conflicts", base()};
    c.config.conflict_strategy = ConflictStrategy::kClique;
    cases.push_back(c);
  }
  {
    PipelineCase c{"travel_aware", base()};
    c.config.conflict_policy = ConflictPolicy::kTravelTimeAware;
    cases.push_back(c);
  }
  {
    PipelineCase c{"euclidean", base()};
    c.config.metric = MetricKind::kEuclidean;
    cases.push_back(c);
  }
  return cases;
}

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, EveryPaperPlannerProducesAFeasiblePlanning) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(GetParam().config);
  ASSERT_TRUE(instance.ok()) << instance.status();

  for (const PlannerKind kind : PaperPlannerKinds()) {
    const std::unique_ptr<Planner> planner = MakePlanner(kind);
    const PlannerResult result = planner->Plan(*instance);
    const ValidationReport report =
        ValidatePlanning(*instance, result.planning);
    EXPECT_TRUE(report.ok())
        << planner->name() << " on " << GetParam().label << ":\n"
        << report.ToString();
    EXPECT_NEAR(result.planning.total_utility(),
                TotalUtility(*instance, result.planning), 1e-9);
    EXPECT_GE(result.stats.wall_seconds, 0.0);
  }
}

TEST_P(PipelineTest, ExtensionPlannersProduceFeasiblePlannings) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(GetParam().config);
  ASSERT_TRUE(instance.ok());
  for (const PlannerKind kind :
       {PlannerKind::kOnlineDp, PlannerKind::kOnlineGreedy,
        PlannerKind::kDeDpoRgLs, PlannerKind::kDeGreedyRgLs,
        PlannerKind::kNaiveRatioGreedy}) {
    const std::unique_ptr<Planner> planner = MakePlanner(kind);
    const PlannerResult result = planner->Plan(*instance);
    const ValidationReport report =
        ValidatePlanning(*instance, result.planning);
    EXPECT_TRUE(report.ok()) << planner->name() << " on " << GetParam().label
                             << ":\n"
                             << report.ToString();
  }
}

TEST_P(PipelineTest, DecomposedFamiliesOrderAsExpected) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(GetParam().config);
  ASSERT_TRUE(instance.ok());
  const double dedp =
      MakePlanner(PlannerKind::kDeDp)->Plan(*instance).planning.total_utility();
  const double dedpo = MakePlanner(PlannerKind::kDeDpo)
                           ->Plan(*instance)
                           .planning.total_utility();
  const double dedpo_rg = MakePlanner(PlannerKind::kDeDpoRg)
                              ->Plan(*instance)
                              .planning.total_utility();
  const double degreedy_rg = MakePlanner(PlannerKind::kDeGreedyRg)
                                 ->Plan(*instance)
                                 .planning.total_utility();
  const double degreedy = MakePlanner(PlannerKind::kDeGreedy)
                              ->Plan(*instance)
                              .planning.total_utility();
  EXPECT_DOUBLE_EQ(dedp, dedpo) << "Lemma 2 equivalence";
  EXPECT_GE(dedpo_rg, dedpo - 1e-9) << "+RG never hurts";
  EXPECT_GE(degreedy_rg, degreedy - 1e-9) << "+RG never hurts";
}

TEST_P(PipelineTest, SerializationPreservesPlannerBehaviour) {
  const StatusOr<Instance> instance =
      GenerateSyntheticInstance(GetParam().config);
  ASSERT_TRUE(instance.ok());
  const StatusOr<Instance> reloaded =
      DeserializeInstance(SerializeInstance(*instance));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  const double before = MakePlanner(PlannerKind::kDeDpo)
                            ->Plan(*instance)
                            .planning.total_utility();
  const double after = MakePlanner(PlannerKind::kDeDpo)
                           ->Plan(*reloaded)
                           .planning.total_utility();
  EXPECT_DOUBLE_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Knobs, PipelineTest,
                         ::testing::ValuesIn(PipelineCases()),
                         [](const auto& info) {
                           std::string name = info.param.label;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(PipelineEbsnTest, EveryPlannerFeasibleOnSimulatedCities) {
  for (const CityConfig& city : PaperCities()) {
    CityConfig small = city;
    // Shrink user counts so the full planner sweep stays fast in tests.
    small.num_users = std::min(small.num_users, 150);
    small.num_events = std::min(small.num_events, 60);
    const StatusOr<Instance> instance =
        SimulateCity(small, MeetupSimOptions());
    ASSERT_TRUE(instance.ok()) << instance.status();
    for (const PlannerKind kind : PaperPlannerKinds()) {
      const PlannerResult result = MakePlanner(kind)->Plan(*instance);
      const ValidationReport report =
          ValidatePlanning(*instance, result.planning);
      EXPECT_TRUE(report.ok()) << city.name << " / " << PlannerKindName(kind)
                               << ":\n"
                               << report.ToString();
    }
  }
}

}  // namespace
}  // namespace usep
