// End-to-end checks of the Remark 1 / Remark 2 problem variants: the
// reductions produce plain USEP instances, so every planner property —
// feasibility, the DeDP/DeDPO equivalence, the 1/2-approximation — must
// carry over unchanged.

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "common/rng.h"
#include "core/transforms.h"
#include "core/validation.h"
#include "gen/synthetic_generator.h"
#include "testing/test_instances.h"

namespace usep {
namespace {

class VariantTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  StatusOr<Instance> BaseInstance() const {
    GeneratorConfig config = testing::SmallRandomConfig(GetParam());
    config.num_events = 6;
    config.num_users = 4;
    return GenerateSyntheticInstance(config);
  }
};

TEST_P(VariantTest, FeeVariantKeepsAllGuarantees) {
  const StatusOr<Instance> base = BaseInstance();
  ASSERT_TRUE(base.ok());
  Rng rng(GetParam() + 77);
  std::vector<Cost> fees(base->num_events());
  for (Cost& fee : fees) fee = rng.UniformInt(0, 30);
  const StatusOr<Instance> priced = WithParticipationFees(*base, fees);
  ASSERT_TRUE(priced.ok());

  const double optimum =
      ExactPlanner().Plan(*priced).planning.total_utility();
  for (const PlannerKind kind : PaperPlannerKinds()) {
    const PlannerResult result = MakePlanner(kind)->Plan(*priced);
    const ValidationReport report =
        ValidatePlanning(*priced, result.planning);
    EXPECT_TRUE(report.ok()) << PlannerKindName(kind) << "\n"
                             << report.ToString();
    EXPECT_LE(result.planning.total_utility(), optimum + 1e-9);
  }
  const double dedpo =
      MakePlanner(PlannerKind::kDeDpo)->Plan(*priced).planning.total_utility();
  EXPECT_GE(dedpo, 0.5 * optimum - 1e-9)
      << "1/2-approximation on the fee variant, seed " << GetParam();
}

TEST_P(VariantTest, CandidateRestrictionKeepsAllGuarantees) {
  const StatusOr<Instance> base = BaseInstance();
  ASSERT_TRUE(base.ok());
  Rng rng(GetParam() + 991);
  std::vector<std::vector<EventId>> candidates(base->num_users());
  for (auto& set : candidates) {
    for (EventId v = 0; v < base->num_events(); ++v) {
      if (rng.Bernoulli(0.6)) set.push_back(v);
    }
  }
  const StatusOr<Instance> restricted = RestrictCandidates(*base, candidates);
  ASSERT_TRUE(restricted.ok());

  const double optimum =
      ExactPlanner().Plan(*restricted).planning.total_utility();
  for (const PlannerKind kind : PaperPlannerKinds()) {
    const PlannerResult result = MakePlanner(kind)->Plan(*restricted);
    EXPECT_TRUE(ValidatePlanning(*restricted, result.planning).ok())
        << PlannerKindName(kind);
    // Nothing outside the candidate sets is ever arranged.
    for (UserId u = 0; u < restricted->num_users(); ++u) {
      for (const EventId v : result.planning.schedule(u).events()) {
        EXPECT_NE(std::find(candidates[u].begin(), candidates[u].end(), v),
                  candidates[u].end())
            << PlannerKindName(kind) << " arranged v" << v
            << " outside V_u of user " << u;
      }
    }
  }
  const double dedpo = MakePlanner(PlannerKind::kDeDpo)
                           ->Plan(*restricted)
                           .planning.total_utility();
  EXPECT_GE(dedpo, 0.5 * optimum - 1e-9);
}

TEST_P(VariantTest, FeesOnlyEverReduceTheOptimum) {
  const StatusOr<Instance> base = BaseInstance();
  ASSERT_TRUE(base.ok());
  const double base_optimum =
      ExactPlanner().Plan(*base).planning.total_utility();
  const StatusOr<Instance> priced = WithParticipationFees(
      *base, std::vector<Cost>(base->num_events(), 10));
  ASSERT_TRUE(priced.ok());
  const double priced_optimum =
      ExactPlanner().Plan(*priced).planning.total_utility();
  EXPECT_LE(priced_optimum, base_optimum + 1e-9);
}

TEST_P(VariantTest, RestrictionOnlyEverReducesTheOptimum) {
  const StatusOr<Instance> base = BaseInstance();
  ASSERT_TRUE(base.ok());
  const double base_optimum =
      ExactPlanner().Plan(*base).planning.total_utility();
  // Restrict every user to the first half of the catalogue.
  std::vector<EventId> first_half;
  for (EventId v = 0; v < base->num_events() / 2; ++v) {
    first_half.push_back(v);
  }
  const StatusOr<Instance> restricted = RestrictCandidates(
      *base,
      std::vector<std::vector<EventId>>(base->num_users(), first_half));
  ASSERT_TRUE(restricted.ok());
  const double restricted_optimum =
      ExactPlanner().Plan(*restricted).planning.total_utility();
  EXPECT_LE(restricted_optimum, base_optimum + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VariantTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace usep
