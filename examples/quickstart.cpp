// Quickstart: build a small USEP instance through the public API, run the
// recommended planner (DeDPO+RG, the paper's best-utility algorithm), and
// print every user's personalized event schedule.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "algo/planner_registry.h"
#include "core/instance_builder.h"
#include "core/validation.h"

int main() {
  using namespace usep;

  // A Saturday with four events.  Times are minutes-of-day, so 9:00 = 540.
  InstanceBuilder builder;
  const EventId run = builder.AddEvent({540, 660}, /*capacity=*/2,
                                       "morning-run");       //  9:00-11:00
  const EventId brunch = builder.AddEvent({690, 780}, 3,
                                          "brunch-meetup");  // 11:30-13:00
  const EventId tennis = builder.AddEvent({700, 840}, 1,
                                          "tennis-match");   // 11:40-14:00
  const EventId jazz = builder.AddEvent({870, 960}, 4,
                                        "jazz-evening");     // 14:30-16:00

  // Three users with travel budgets (same unit as distances below).
  const UserId alice = builder.AddUser(40, "alice");
  const UserId bob = builder.AddUser(25, "bob");
  const UserId carol = builder.AddUser(18, "carol");

  // How much each user likes each event, in [0, 1].  Unset pairs default to
  // 0 and are never arranged (the utility constraint).
  builder.SetUtility(run, alice, 0.9);
  builder.SetUtility(brunch, alice, 0.4);
  builder.SetUtility(tennis, alice, 0.7);
  builder.SetUtility(jazz, alice, 0.8);
  builder.SetUtility(run, bob, 0.6);
  builder.SetUtility(tennis, bob, 0.9);
  builder.SetUtility(jazz, bob, 0.3);
  builder.SetUtility(brunch, carol, 0.8);
  builder.SetUtility(jazz, carol, 0.9);

  // Venue and home locations on a Manhattan grid.
  builder.SetMetricLayout(MetricKind::kManhattan,
                          /*event_locations=*/{{2, 3}, {8, 1}, {5, 9}, {7, 6}},
                          /*user_locations=*/{{0, 0}, {9, 2}, {6, 4}});

  StatusOr<Instance> instance = std::move(builder).Build();
  if (!instance.ok()) {
    std::fprintf(stderr, "bad instance: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // Plan with DeDPO+RG: the 1/2-approximation with the RatioGreedy top-up.
  const std::unique_ptr<Planner> planner = MakePlanner(PlannerKind::kDeDpoRg);
  const PlannerResult result = planner->Plan(*instance);

  std::printf("planner: %s\n", std::string(planner->name()).c_str());
  std::printf("total utility Omega(A) = %.2f across %d assignments\n\n",
              result.planning.total_utility(),
              result.planning.total_assignments());
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const Schedule& schedule = result.planning.schedule(u);
    std::printf("%-6s (budget %2lld, spends %2lld): ",
                instance->user(u).name.c_str(),
                (long long)instance->user(u).budget,
                (long long)schedule.route_cost());
    if (schedule.empty()) {
      std::printf("stays home\n");
      continue;
    }
    for (const EventId v : schedule.events()) {
      std::printf("%s [%lld-%lld]  ", instance->event(v).name.c_str(),
                  (long long)instance->event(v).interval.start,
                  (long long)instance->event(v).interval.end);
    }
    std::printf("\n");
  }

  // Plannings from this library are feasible by construction; re-verify
  // anyway to show the validation API.
  const Status feasible = CheckPlanningFeasible(*instance, result.planning);
  std::printf("\nindependent validation: %s\n", feasible.ToString().c_str());
  return feasible.ok() ? 0 : 1;
}
