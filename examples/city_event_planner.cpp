// City-scale planning on the EBSN simulator: generate a Meetup-like city
// (Table 6 statistics), run a chosen planner, and report per-city summary
// statistics.  Optionally persists the instance and planning with the io
// module so runs can be inspected or replayed.
//
//   ./build/examples/city_event_planner --city=singapore --planner=DeDPO+RG
//   ./build/examples/city_event_planner --city=auckland --save_prefix=/tmp/akl

#include <cstdio>
#include <memory>

#include "algo/planner_registry.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "ebsn/meetup_simulator.h"
#include "io/instance_io.h"
#include "io/planning_io.h"

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("city_event_planner");
  std::string* city_name =
      flags.AddString("city", "singapore",
                      "vancouver | auckland | singapore");
  std::string* planner_name =
      flags.AddString("planner", "DeDPO+RG", "planner to run (see registry)");
  double* budget_factor = flags.AddDouble("budget_factor", 2.0, "f_b");
  int64_t* seed = flags.AddInt64("seed", 20150531, "simulator seed");
  std::string* save_prefix = flags.AddString(
      "save_prefix", "", "write <prefix>.instance / <prefix>.planning");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  CityConfig city;
  const std::string lower = AsciiToLower(*city_name);
  if (lower == "vancouver") {
    city = VancouverConfig();
  } else if (lower == "auckland") {
    city = AucklandConfig();
  } else if (lower == "singapore") {
    city = SingaporeConfig();
  } else {
    std::fprintf(stderr, "unknown city '%s'\n", city_name->c_str());
    return 2;
  }

  MeetupSimOptions options;
  options.budget_factor = *budget_factor;
  options.seed = static_cast<uint64_t>(*seed);
  const StatusOr<Instance> instance = SimulateCity(city, options);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s\n", city.name.c_str(),
              instance->DebugSummary().c_str());

  const StatusOr<std::unique_ptr<Planner>> planner =
      MakePlannerByName(*planner_name);
  if (!planner.ok()) {
    std::fprintf(stderr, "%s\n", planner.status().ToString().c_str());
    return 2;
  }
  const PlannerResult result = (*planner)->Plan(*instance);

  // Summary statistics.
  int users_with_plans = 0;
  int max_schedule = 0;
  int64_t total_events_attended = 0;
  for (UserId u = 0; u < instance->num_users(); ++u) {
    const int size = result.planning.schedule(u).size();
    if (size > 0) ++users_with_plans;
    if (size > max_schedule) max_schedule = size;
    total_events_attended += size;
  }
  int full_events = 0;
  for (EventId v = 0; v < instance->num_events(); ++v) {
    if (result.planning.EventFull(v)) ++full_events;
  }

  std::printf("planner:            %s\n", std::string((*planner)->name()).c_str());
  std::printf("total utility:      %.2f\n", result.planning.total_utility());
  std::printf("planning time:      %.1f ms\n",
              result.stats.wall_seconds * 1e3);
  std::printf("users with a plan:  %d / %d\n", users_with_plans,
              instance->num_users());
  std::printf("events per planned user: %.2f (max %d)\n",
              users_with_plans > 0
                  ? static_cast<double>(total_events_attended) /
                        users_with_plans
                  : 0.0,
              max_schedule);
  std::printf("events at capacity: %d / %d\n", full_events,
              instance->num_events());

  if (!save_prefix->empty()) {
    const Status wrote_instance =
        WriteInstanceFile(*instance, *save_prefix + ".instance");
    const Status wrote_planning =
        WritePlanningFile(result.planning, *save_prefix + ".planning");
    if (!wrote_instance.ok() || !wrote_planning.ok()) {
      std::fprintf(stderr, "save failed: %s / %s\n",
                   wrote_instance.ToString().c_str(),
                   wrote_planning.ToString().c_str());
      return 1;
    }
    std::printf("saved %s.instance and %s.planning\n", save_prefix->c_str(),
                save_prefix->c_str());
  }
  return 0;
}
