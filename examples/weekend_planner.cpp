// The paper's motivating scenario (Section 1): Alice, "a sports enthusiast
// and a music fan", faces a Saturday with three mutually attractive but
// partially conflicting events — a running club 9:00-11:00, a tennis match
// 10:00-13:30, and a jazz party 14:00-15:00 — plus real travel times
// between venues.  This example plans for Alice *and* the rest of the
// neighbourhood at once, using the travel-time-aware conflict policy (an
// event only chains after another if the trip fits in the gap).
//
//   ./build/examples/weekend_planner [--budget=N]

#include <cstdio>

#include "algo/exact.h"
#include "algo/planner_registry.h"
#include "common/flags.h"
#include "core/instance_builder.h"

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("weekend_planner");
  int64_t* alice_budget =
      flags.AddInt64("budget", 120, "Alice's travel budget (minutes)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  InstanceBuilder builder;
  // Minutes-of-day; costs are travel *minutes*, so the travel-aware policy
  // prunes chains that cannot physically be attended.
  const EventId running = builder.AddEvent({540, 660}, 20, "running-club");
  const EventId tennis = builder.AddEvent({600, 810}, 2, "tennis-match");
  const EventId jazz = builder.AddEvent({840, 900}, 30, "jazz-party");

  const UserId alice = builder.AddUser(*alice_budget, "alice");
  const UserId ben = builder.AddUser(90, "ben");
  const UserId chloe = builder.AddUser(60, "chloe");
  const UserId dan = builder.AddUser(45, "dan");

  // Alice loves everything (the dilemma); others are pickier.
  builder.SetUtility(running, alice, 0.8);
  builder.SetUtility(tennis, alice, 0.9);
  builder.SetUtility(jazz, alice, 0.85);
  builder.SetUtility(running, ben, 0.7);
  builder.SetUtility(tennis, ben, 0.8);
  builder.SetUtility(jazz, chloe, 0.9);
  builder.SetUtility(running, chloe, 0.5);
  builder.SetUtility(tennis, dan, 0.95);
  builder.SetUtility(jazz, dan, 0.4);

  // Locations; grid units are minutes of travel (Manhattan).  The jazz bar
  // is across town from the tennis gymnasium — the paper's "half hour by
  // taxi or two hours by bus" tension.
  builder.SetMetricLayout(MetricKind::kManhattan,
                          /*event_locations=*/{{10, 10},   // running club
                                               {40, 15},   // tennis gym
                                               {15, 55}},  // jazz bar
                          /*user_locations=*/{{12, 18},    // alice
                                              {35, 10},    // ben
                                              {18, 45},    // chloe
                                              {42, 20}});  // dan
  builder.SetConflictPolicy(ConflictPolicy::kTravelTimeAware);

  StatusOr<Instance> instance = std::move(builder).Build();
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }

  std::printf("Saturday planning (travel-time-aware), Alice's budget = %lld\n",
              (long long)*alice_budget);
  std::printf("conflicts: running<->tennis overlap in time; tennis->jazz "
              "needs the 30-minute gap to cover the trip\n\n");

  for (const PlannerKind kind :
       {PlannerKind::kDeDpoRg, PlannerKind::kDeGreedyRg,
        PlannerKind::kRatioGreedy}) {
    const PlannerResult result = MakePlanner(kind)->Plan(*instance);
    std::printf("%-12s Omega=%.2f\n", PlannerKindName(kind),
                result.planning.total_utility());
    for (UserId u = 0; u < instance->num_users(); ++u) {
      const Schedule& schedule = result.planning.schedule(u);
      std::printf("  %-6s -> ", instance->user(u).name.c_str());
      if (schedule.empty()) {
        std::printf("(nothing)\n");
        continue;
      }
      for (const EventId v : schedule.events()) {
        std::printf("%s ", instance->event(v).name.c_str());
      }
      std::printf(" (travel %lld of %lld)\n",
                  (long long)schedule.route_cost(),
                  (long long)instance->user(u).budget);
    }
  }

  const PlannerResult exact = ExactPlanner().Plan(*instance);
  std::printf("\nexact optimum for reference: Omega=%.2f\n",
              exact.planning.total_utility());
  return 0;
}
