// Generic command-line solver: read a USEP instance file, run one or more
// planners, report statistics, optionally write the best planning back out.
// The io counterpart of the library — what a downstream user scripts
// against.
//
//   # Generate an instance first (or write one by hand; see io/instance_io.h):
//   ./build/examples/city_event_planner --city=auckland --save_prefix=/tmp/akl
//   # Solve it:
//   ./build/examples/usep_solve --instance=/tmp/akl.instance
//       --planners=DeDPO+RG,DeGreedy+RG --output=/tmp/akl.best

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>

#include "algo/parallel.h"
#include "algo/planner_registry.h"
#include "common/flags.h"
#include "common/memhook.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/planning_stats.h"
#include "core/validation.h"
#include "io/instance_io.h"
#include "io/planning_io.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace {

// SIGINT/SIGTERM cancel every in-flight planner cooperatively: each returns
// its best-so-far valid planning (termination "cancelled") and the normal
// tail still runs — comparison table, --output, trace/report sinks all get
// flushed.  The handler restores the default disposition so a second signal
// kills immediately.
usep::CancellationToken g_shutdown;
std::atomic<int> g_shutdown_signal{0};

void HandleShutdownSignal(int sig) {
  g_shutdown.Cancel();
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
  std::signal(sig, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("usep_solve");
  std::string* instance_path =
      flags.AddString("instance", "", "path to a USEP-INSTANCE file");
  std::string* planners_flag = flags.AddString(
      "planners", "DeDPO+RG,DeGreedy+RG,RatioGreedy",
      "comma-separated planner names (see algo/planner_registry.h)");
  std::string* output_path = flags.AddString(
      "output", "", "write the best planning to this path (optional)");
  std::string* fallback_chain = flags.AddString(
      "fallback_chain", "",
      "also run a graceful-degradation chain, e.g. "
      "'Exact->DeDPO+RG->RatioGreedy'");
  double* deadline_ms = flags.AddDouble(
      "deadline_ms", 0.0, "per-planner wall-clock deadline (0 = none)");
  int64_t* max_nodes = flags.AddInt64(
      "max_nodes", 0, "per-planner guard-node budget (0 = none)");
  int64_t* threads = flags.AddInt64(
      "threads", 1,
      "run the requested planners concurrently on this many threads "
      "(identical results, in the requested order)");
  std::string* trace_out = flags.AddString(
      "trace_out", "",
      "write a Chrome trace-event JSON (load at ui.perfetto.dev) here");
  std::string* report_out = flags.AddString(
      "report_out", "",
      "write a machine-readable JSON run report here (see "
      "docs/OBSERVABILITY.md)");
  bool* profile = flags.AddBool(
      "profile", false,
      "record trace spans and print a per-phase self/total time table "
      "(no --trace_out file needed)");
  bool* perf = flags.AddBool(
      "perf", false,
      "with --profile: read hardware counters per phase, adding IPC / "
      "LLC-miss / branch-miss columns to the table (no-op when "
      "perf_event_open is unavailable)");
  std::string* sample_out = flags.AddString(
      "sample_out", "",
      "write a folded-stack (flamegraph.pl-compatible) profile of the run "
      "to this path");
  int64_t* sample_hz = flags.AddInt64(
      "sample_hz", 97, "stack-sampler frequency (CPU-time Hz per thread)");
  bool* verbose = flags.AddBool("verbose", false, "print per-user schedules");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (instance_path->empty()) {
    std::fprintf(stderr, "--instance is required\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  const StatusOr<Instance> instance = ReadInstanceFile(*instance_path);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", instance->DebugSummary().c_str());

  std::vector<std::string> planner_names;
  for (const std::string& name : Split(*planners_flag, ',')) {
    if (!Trim(name).empty()) planner_names.push_back(name);
  }
  if (!fallback_chain->empty()) planner_names.push_back(*fallback_chain);
  if (planner_names.empty()) {
    std::fprintf(stderr, "no planners requested: pass --planners and/or "
                         "--fallback_chain\n");
    return 2;
  }

  // Build every requested planner up front (so name errors surface before
  // any work runs), then execute them — concurrently with --threads > 1.
  std::vector<std::unique_ptr<Planner>> planners;
  for (const std::string& raw_name : planner_names) {
    StatusOr<std::unique_ptr<Planner>> planner = MakePlannerByName(raw_name);
    if (!planner.ok()) {
      std::fprintf(stderr, "%s\n", planner.status().ToString().c_str());
      return 2;
    }
    planners.push_back(std::move(*planner));
  }

  // Observability sinks: a null pointer keeps the instrumented code paths
  // free (no clock reads, no recording); flags turn them on.  --profile
  // needs the span stream too, so it activates the recorder even without a
  // --trace_out file.
  obs::TraceRecorder trace_recorder;
  obs::MetricsRegistry metrics_registry;
  obs::TraceRecorder* const trace =
      trace_out->empty() && !*profile ? nullptr : &trace_recorder;
  obs::MetricsRegistry* const metrics =
      report_out->empty() ? nullptr : &metrics_registry;
  if (trace != nullptr) {
    trace->NameCurrentThread("main");
    if (*profile) {
      // Per-phase counter and allocation attribution ride the span stream;
      // both silently no-op when their backend is absent.
      trace->set_collect_perf(*perf);
      trace->set_collect_alloc(true);
      if (*perf && !obs::PerfCounterGroup::Supported()) {
        std::fprintf(stderr,
                     "--perf: hardware counters unavailable (%s); the "
                     "profile table will carry no counter columns\n",
                     obs::PerfCounterGroup::UnavailableReason());
      }
    }
  }
  if (!sample_out->empty()) {
    obs::SamplerOptions sampler_options;
    sampler_options.hz = static_cast<int>(*sample_hz);
    std::string sampler_error;
    if (!obs::StackSampler::Global().Start(sampler_options, &sampler_error)) {
      std::fprintf(stderr,
                   "--sample_out: sampling unavailable (%s); the folded "
                   "output will be empty\n",
                   sampler_error.c_str());
    }
  }
  if (memhook::IsActive()) memhook::ResetPeak();
  CpuStopwatch process_cpu(CpuStopwatch::Kind::kProcess);

  // The deadline is per planner: each row of the comparison table gets the
  // full budget, so an expensive planner can't starve the ones after it.
  // (Under --threads the budgets tick concurrently from launch.)
  std::vector<BatchJob> jobs;
  std::vector<PlanContext> contexts;
  for (const std::unique_ptr<Planner>& planner : planners) {
    PlanContext context;
    if (*deadline_ms > 0.0) {
      context.deadline = Deadline::AfterMillis(*deadline_ms);
    }
    context.max_nodes = *max_nodes;
    context.cancel = g_shutdown;
    context.trace = trace;
    context.metrics = metrics;
    jobs.push_back(BatchJob{planner.get(), &*instance});
    contexts.push_back(context);
  }
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  ParallelConfig parallel;
  parallel.num_threads = static_cast<int>(*threads);
  std::vector<PlannerResult> results =
      ParallelBatchSolver(parallel).Solve(jobs, contexts);
  if (g_shutdown.cancelled()) {
    std::printf("interrupted (signal %d): each planner stopped at its next "
                "guard check; results below are best-so-far\n",
                g_shutdown_signal.load(std::memory_order_relaxed));
  }

  TablePrinter table({"planner", "Omega", "time_ms", "planned_users",
                      "seat_fill_%", "gini", "termination", "rung"});
  std::optional<PlannerResult> best;
  std::string best_name;
  std::vector<obs::PlannerRunReport> run_reports;
  PlannerStats aggregate_stats;
  for (size_t i = 0; i < planners.size(); ++i) {
    const std::string& raw_name = planner_names[i];
    const std::unique_ptr<Planner>& planner = planners[i];
    PlannerResult& result = results[i];
    const Status feasible = CheckPlanningFeasible(*instance, result.planning);
    if (!feasible.ok()) {
      std::fprintf(stderr, "planner %s produced an invalid planning:\n%s\n",
                   raw_name.c_str(), feasible.ToString().c_str());
      return 1;
    }
    const PlanningStats stats =
        ComputePlanningStats(*instance, result.planning);
    table.AddRow({std::string(planner->name()),
                  StrFormat("%.3f", stats.total_utility),
                  StrFormat("%.1f", result.stats.wall_seconds * 1e3),
                  StrFormat("%d/%d", stats.users_with_plans, stats.num_users),
                  StrFormat("%.1f", 100.0 * stats.seat_fill_rate),
                  StrFormat("%.3f", stats.utility_gini),
                  TerminationName(result.termination),
                  result.stats.fallback_rung.empty()
                      ? "-"
                      : result.stats.fallback_rung});
    if (*verbose) {
      if (!result.stats.fallback_trace.empty()) {
        std::printf("fallback descent: %s\n",
                    result.stats.fallback_trace.c_str());
      }
      std::printf("%s\n", result.planning.ToString().c_str());
    }
    obs::PlannerRunReport run;
    run.planner = std::string(planner->name());
    run.termination = TerminationName(result.termination);
    run.wall_seconds = result.stats.wall_seconds;
    run.iterations = result.stats.iterations;
    run.heap_pushes = result.stats.heap_pushes;
    run.dp_cells = result.stats.dp_cells;
    run.guard_nodes = result.stats.guard_nodes;
    run.states = result.stats.states;
    run.merges = result.stats.merges;
    run.certified_optimal = result.stats.certified_optimal;
    run.exact_stop = result.stats.exact_stop;
    run.logical_peak_bytes = result.stats.logical_peak_bytes;
    run.fallback_rung = result.stats.fallback_rung;
    run.fallback_trace = result.stats.fallback_trace;
    run.utility = stats.total_utility;
    run.assignments = stats.total_assignments;
    run.planned_users = stats.users_with_plans;
    run.validated = true;  // CheckPlanningFeasible passed above.
    run_reports.push_back(std::move(run));
    aggregate_stats.MergeFrom(result.stats);
    if (!best.has_value() ||
        result.planning.total_utility() > best->planning.total_utility()) {
      best_name = std::string(planner->name());
      best = std::move(result);
    }
  }
  table.Print(std::cout);

  if (best.has_value()) {
    std::printf("\nbest: %s (Omega = %.3f)\n", best_name.c_str(),
                best->planning.total_utility());
    if (!output_path->empty()) {
      const Status wrote = WritePlanningFile(best->planning, *output_path);
      if (!wrote.ok()) {
        std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", output_path->c_str());
    }
  }

  if (*profile) {
    // "Where did the time go" without opening Perfetto: fold the span
    // stream into per-phase self/total times (docs/BENCHMARKING.md), plus
    // per-phase IPC / miss-rate / allocation columns when collected.
    std::printf("\n=== phase profile ===\n");
    obs::Profile::FromRecorder(trace_recorder).PrintTable(std::cout);
  }
  if (!sample_out->empty()) {
    obs::StackSampler& sampler = obs::StackSampler::Global();
    sampler.Stop();
    std::string error;
    if (sampler.WriteFolded(*sample_out, &error)) {
      std::printf("wrote %s (%llu samples, %llu dropped)\n",
                  sample_out->c_str(),
                  static_cast<unsigned long long>(sampler.SampleCount()),
                  static_cast<unsigned long long>(sampler.DroppedSamples()));
    } else {
      std::fprintf(stderr, "folded-stack write failed: %s\n", error.c_str());
    }
  }
  if (trace != nullptr && !trace_out->empty()) {
    std::string error;
    if (!trace->WriteJsonFile(*trace_out, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", trace_out->c_str(),
                trace->size());
  }
  if (!report_out->empty()) {
    obs::RunReport report;
    report.tool = "usep_solve";
    report.instance_label = *instance_path;
    report.num_events = instance->num_events();
    report.num_users = instance->num_users();
    for (EventId v = 0; v < instance->num_events(); ++v) {
      report.total_capacity += instance->event(v).capacity;
    }
    report.config.emplace_back("planners", *planners_flag);
    report.config.emplace_back("fallback_chain", *fallback_chain);
    report.config.emplace_back("deadline_ms", StrFormat("%g", *deadline_ms));
    report.config.emplace_back("max_nodes",
                               StrFormat("%lld", (long long)*max_nodes));
    report.config.emplace_back("threads",
                               StrFormat("%lld", (long long)*threads));
    report.runs = std::move(run_reports);
    if (!report.runs.empty()) {
      report.has_aggregate = true;
      report.aggregate.planner = "<aggregate>";
      report.aggregate.wall_seconds = aggregate_stats.wall_seconds;
      report.aggregate.iterations = aggregate_stats.iterations;
      report.aggregate.heap_pushes = aggregate_stats.heap_pushes;
      report.aggregate.dp_cells = aggregate_stats.dp_cells;
      report.aggregate.guard_nodes = aggregate_stats.guard_nodes;
      report.aggregate.states = aggregate_stats.states;
      report.aggregate.merges = aggregate_stats.merges;
      report.aggregate.certified_optimal = aggregate_stats.certified_optimal;
      report.aggregate.exact_stop = aggregate_stats.exact_stop;
      report.aggregate.logical_peak_bytes = aggregate_stats.logical_peak_bytes;
      report.aggregate.fallback_rung = aggregate_stats.fallback_rung;
      report.aggregate.fallback_trace = aggregate_stats.fallback_trace;
    }
    report.process_cpu_seconds = process_cpu.ElapsedSeconds();
    report.memhook_active = memhook::IsActive();
    report.memhook_current_bytes = memhook::CurrentBytes();
    report.memhook_peak_bytes = memhook::PeakBytes();
    report.memhook_total_allocations = memhook::TotalAllocations();
    report.metrics = metrics_registry.Snapshot();
    std::string error;
    if (!report.WriteJsonFile(*report_out, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_out->c_str());
  }
  return 0;
}
