// Generic command-line solver: read a USEP instance file, run one or more
// planners, report statistics, optionally write the best planning back out.
// The io counterpart of the library — what a downstream user scripts
// against.
//
//   # Generate an instance first (or write one by hand; see io/instance_io.h):
//   ./build/examples/city_event_planner --city=auckland --save_prefix=/tmp/akl
//   # Solve it:
//   ./build/examples/usep_solve --instance=/tmp/akl.instance
//       --planners=DeDPO+RG,DeGreedy+RG --output=/tmp/akl.best

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>

#include "algo/parallel.h"
#include "algo/planner_registry.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/planning_stats.h"
#include "core/validation.h"
#include "io/instance_io.h"
#include "io/planning_io.h"

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("usep_solve");
  std::string* instance_path =
      flags.AddString("instance", "", "path to a USEP-INSTANCE file");
  std::string* planners_flag = flags.AddString(
      "planners", "DeDPO+RG,DeGreedy+RG,RatioGreedy",
      "comma-separated planner names (see algo/planner_registry.h)");
  std::string* output_path = flags.AddString(
      "output", "", "write the best planning to this path (optional)");
  std::string* fallback_chain = flags.AddString(
      "fallback_chain", "",
      "also run a graceful-degradation chain, e.g. "
      "'Exact->DeDPO+RG->RatioGreedy'");
  double* deadline_ms = flags.AddDouble(
      "deadline_ms", 0.0, "per-planner wall-clock deadline (0 = none)");
  int64_t* max_nodes = flags.AddInt64(
      "max_nodes", 0, "per-planner guard-node budget (0 = none)");
  int64_t* threads = flags.AddInt64(
      "threads", 1,
      "run the requested planners concurrently on this many threads "
      "(identical results, in the requested order)");
  bool* verbose = flags.AddBool("verbose", false, "print per-user schedules");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (instance_path->empty()) {
    std::fprintf(stderr, "--instance is required\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  const StatusOr<Instance> instance = ReadInstanceFile(*instance_path);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", instance->DebugSummary().c_str());

  std::vector<std::string> planner_names;
  for (const std::string& name : Split(*planners_flag, ',')) {
    if (!Trim(name).empty()) planner_names.push_back(name);
  }
  if (!fallback_chain->empty()) planner_names.push_back(*fallback_chain);
  if (planner_names.empty()) {
    std::fprintf(stderr, "no planners requested: pass --planners and/or "
                         "--fallback_chain\n");
    return 2;
  }

  // Build every requested planner up front (so name errors surface before
  // any work runs), then execute them — concurrently with --threads > 1.
  std::vector<std::unique_ptr<Planner>> planners;
  for (const std::string& raw_name : planner_names) {
    StatusOr<std::unique_ptr<Planner>> planner = MakePlannerByName(raw_name);
    if (!planner.ok()) {
      std::fprintf(stderr, "%s\n", planner.status().ToString().c_str());
      return 2;
    }
    planners.push_back(std::move(*planner));
  }

  // The deadline is per planner: each row of the comparison table gets the
  // full budget, so an expensive planner can't starve the ones after it.
  // (Under --threads the budgets tick concurrently from launch.)
  std::vector<BatchJob> jobs;
  std::vector<PlanContext> contexts;
  for (const std::unique_ptr<Planner>& planner : planners) {
    PlanContext context;
    if (*deadline_ms > 0.0) {
      context.deadline = Deadline::AfterMillis(*deadline_ms);
    }
    context.max_nodes = *max_nodes;
    jobs.push_back(BatchJob{planner.get(), &*instance});
    contexts.push_back(context);
  }
  ParallelConfig parallel;
  parallel.num_threads = static_cast<int>(*threads);
  std::vector<PlannerResult> results =
      ParallelBatchSolver(parallel).Solve(jobs, contexts);

  TablePrinter table({"planner", "Omega", "time_ms", "planned_users",
                      "seat_fill_%", "gini", "termination", "rung"});
  std::optional<PlannerResult> best;
  std::string best_name;
  for (size_t i = 0; i < planners.size(); ++i) {
    const std::string& raw_name = planner_names[i];
    const std::unique_ptr<Planner>& planner = planners[i];
    PlannerResult& result = results[i];
    const Status feasible = CheckPlanningFeasible(*instance, result.planning);
    if (!feasible.ok()) {
      std::fprintf(stderr, "planner %s produced an invalid planning:\n%s\n",
                   raw_name.c_str(), feasible.ToString().c_str());
      return 1;
    }
    const PlanningStats stats =
        ComputePlanningStats(*instance, result.planning);
    table.AddRow({std::string(planner->name()),
                  StrFormat("%.3f", stats.total_utility),
                  StrFormat("%.1f", result.stats.wall_seconds * 1e3),
                  StrFormat("%d/%d", stats.users_with_plans, stats.num_users),
                  StrFormat("%.1f", 100.0 * stats.seat_fill_rate),
                  StrFormat("%.3f", stats.utility_gini),
                  TerminationName(result.termination),
                  result.stats.fallback_rung.empty()
                      ? "-"
                      : result.stats.fallback_rung});
    if (*verbose) {
      if (!result.stats.fallback_trace.empty()) {
        std::printf("fallback descent: %s\n",
                    result.stats.fallback_trace.c_str());
      }
      std::printf("%s\n", result.planning.ToString().c_str());
    }
    if (!best.has_value() ||
        result.planning.total_utility() > best->planning.total_utility()) {
      best_name = std::string(planner->name());
      best = std::move(result);
    }
  }
  table.Print(std::cout);

  if (best.has_value()) {
    std::printf("\nbest: %s (Omega = %.3f)\n", best_name.c_str(),
                best->planning.total_utility());
    if (!output_path->empty()) {
      const Status wrote = WritePlanningFile(best->planning, *output_path);
      if (!wrote.ok()) {
        std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", output_path->c_str());
    }
  }
  return 0;
}
