// Long-lived streaming USEP planning service: consume a typed mutation
// stream (user joins/leaves, event posts/cancels, capacity changes), keep a
// valid planning continuously fresh through the degradation ladder, and make
// every committed mutation durable in an append-only journal.
//
//   # Serve a generated 500-mutation trace with durability:
//   ./build/examples/usep_serve --gen_mutations=500 --gen_seed=7
//       --journal=/tmp/usep.journal --snapshot=/tmp/usep.snap
//       --snapshot_every=64 --slo_ms=50
//   # Verify the journal replays to the exact state the service reported:
//   ./build/examples/usep_serve --verify_replay
//       --journal=/tmp/usep.journal --snapshot=/tmp/usep.snap
//   # Chaos smoke (what CI runs under sanitizers):
//   ./build/examples/usep_serve --chaos --gen_mutations=120
//       --failpoints=20:serve.tier.incremental,40:serve.journal.append
//       --kill_at=60 --journal=/tmp/usep.journal
//
// SIGINT/SIGTERM shut the service down gracefully: the loop finishes the
// in-flight mutation, flushes a final snapshot, closes the journal, and
// prints the best-so-far summary.  A second signal kills immediately.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/crash_handler.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "gen/arrival_trace.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/chaos.h"
#include "serve/service.h"

namespace {

// Set by the signal handler, checked between mutations.  The handler resets
// the disposition so a second signal terminates the process the default way.
std::atomic<int> g_shutdown_signal{0};

void HandleShutdownSignal(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
  std::signal(sig, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("usep_serve");
  std::string* trace_path = flags.AddString(
      "trace", "", "read a USEP-TRACE mutation stream from this path");
  int64_t* gen_mutations = flags.AddInt64(
      "gen_mutations", 0,
      "generate an arrival trace of this many mutations instead of --trace");
  int64_t* gen_seed = flags.AddInt64("gen_seed", 20150531, "trace seed");
  std::string* journal_path = flags.AddString(
      "journal", "", "append-only mutation journal (empty = ephemeral)");
  std::string* snapshot_path = flags.AddString(
      "snapshot", "", "periodic snapshot file (empty = replay-only recovery)");
  int64_t* snapshot_every = flags.AddInt64(
      "snapshot_every", 0, "snapshot every N committed mutations (0 = never)");
  double* slo_ms = flags.AddDouble(
      "slo_ms", 0.0, "per-mutation repair SLO in ms (0 = no deadline)");
  int64_t* queue_capacity =
      flags.AddInt64("queue_capacity", 1024, "Submit() backpressure bound");
  double* shed_fraction = flags.AddDouble(
      "shed_fraction", 0.75,
      "shed load (validity-only repairs) above this fraction of the queue");
  int64_t* threads = flags.AddInt64(
      "threads", 1, "LocalSearch polish threads (bit-identical results)");
  std::string* failpoints = flags.AddString(
      "failpoints", "",
      "scheduled fault injection: comma-separated at:site[:skip_hits], e.g. "
      "'20:serve.tier.incremental,40:serve.journal.append'");
  bool* chaos = flags.AddBool(
      "chaos", false,
      "run the chaos harness (validity re-checked after EVERY mutation, "
      "kill/restart + torn-journal exercises) instead of plain serving");
  int64_t* kill_at = flags.AddInt64(
      "kill_at", -1,
      "with --chaos: simulate a crash after N committed mutations");
  int64_t* batch = flags.AddInt64(
      "batch", 1, "submit mutations in bursts of this size before draining");
  bool* verify_replay = flags.AddBool(
      "verify_replay", false,
      "do not serve: recover from --journal/--snapshot, print the recovered "
      "fingerprint, and leave the files untouched");
  std::string* report_out = flags.AddString(
      "report_out", "",
      "write a machine-readable JSON run report here (see "
      "docs/OBSERVABILITY.md)");
  std::string* flight_dump = flags.AddString(
      "flight_dump", "",
      "flight-recorder dump path: installs crash/SIGQUIT handlers and dumps "
      "the ring here on crashes, rung changes, and journal_broken "
      "(Perfetto-loadable; see docs/SERVING.md)");
  int64_t* flight_slots = flags.AddInt64(
      "flight_slots", 512, "flight-recorder slots per ring (rounded to 2^k)");
  bool* dump_flight = flags.AddBool(
      "dump_flight", false,
      "dump the flight ring to --flight_dump once at exit (on demand)");
  std::string* metrics_out = flags.AddString(
      "metrics_out", "",
      "republish the metrics registry here as statsz JSON (+ Prometheus text "
      "at PATH.prom) via atomic rename while serving");
  double* metrics_every_ms = flags.AddDouble(
      "metrics_every_ms", 1000.0,
      "metrics republish cadence (0 = after every mutation)");
  bool* statsz = flags.AddBool(
      "statsz", false,
      "do not serve: open (recovering from --journal/--snapshot), print a "
      "statsz JSON snapshot to stdout, and exit");
  std::string* sample_out = flags.AddString(
      "sample_out", "",
      "write a folded-stack (flamegraph.pl-compatible) profile of the "
      "serving run to this path at exit");
  int64_t* sample_hz = flags.AddInt64(
      "sample_hz", 97, "stack-sampler frequency (CPU-time Hz per thread)");
  bool* verbose = flags.AddBool("verbose", false, "print per-mutation lines");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  if (!sample_out->empty()) {
    usep::obs::SamplerOptions sampler_options;
    sampler_options.hz = static_cast<int>(*sample_hz);
    std::string sampler_error;
    if (!usep::obs::StackSampler::Global().Start(sampler_options,
                                                 &sampler_error)) {
      std::fprintf(stderr,
                   "--sample_out: sampling unavailable (%s); the folded "
                   "output will be empty\n",
                   sampler_error.c_str());
    }
  }

  if (*verify_replay) {
    if (journal_path->empty()) {
      std::fprintf(stderr, "--verify_replay needs --journal\n");
      return 2;
    }
    const StatusOr<serve::RecoveredState> recovered = serve::RecoverState(
        serve::WorldConfig{}, *journal_path, *snapshot_path);
    if (!recovered.ok()) {
      std::fprintf(stderr, "%s\n", recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("snapshot_loaded: %s%s\n",
                recovered->info.snapshot_loaded ? "yes" : "no",
                recovered->info.snapshot_note.empty()
                    ? ""
                    : StrFormat(" (%s)", recovered->info.snapshot_note.c_str())
                          .c_str());
    std::printf("replayed_records: %llu\n",
                (unsigned long long)recovered->info.replayed_records);
    std::printf("truncated_tail: %s\n",
                recovered->info.truncated_tail ? "yes" : "no");
    std::printf("next_seq: %llu\n", (unsigned long long)recovered->next_seq);
    // The same combine as StreamingService::Fingerprint(), so this value is
    // directly comparable with the one the serving run printed.
    std::printf("fingerprint: %016llx\n",
                (unsigned long long)serve::Fnv1a64(
                    recovered->world.Serialize() +
                    recovered->state.Serialize()));
    return 0;
  }

  // --- Load or generate the mutation stream --------------------------------
  gen::ArrivalTrace trace;
  if (!trace_path->empty()) {
    StatusOr<gen::ArrivalTrace> read = gen::ReadTraceFile(*trace_path);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*read);
  } else if (*gen_mutations > 0) {
    gen::ArrivalTraceConfig config;
    config.num_mutations = static_cast<int>(*gen_mutations);
    config.seed = static_cast<uint64_t>(*gen_seed);
    StatusOr<gen::ArrivalTrace> generated = gen::GenerateArrivalTrace(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*generated);
  } else if (!*statsz) {
    // --statsz alone is fine: it only opens (recovering) and prints, so it
    // needs no mutation stream — just the default world config, the same
    // one --verify_replay assumes.
    std::fprintf(stderr, "pass --trace or --gen_mutations\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  // Scheduled failpoints: "at:site[:skip_hits]" entries.
  std::vector<serve::FailpointEvent> schedule;
  for (const std::string& raw : Split(*failpoints, ',')) {
    const std::string entry = Trim(raw);
    if (entry.empty()) continue;
    const std::vector<std::string> parts = Split(entry, ':');
    serve::FailpointEvent event;
    int64_t at = 0;
    int64_t skip = 0;
    const bool ok =
        (parts.size() == 2 || parts.size() == 3) && ParseInt64(parts[0], &at) &&
        (parts.size() == 2 || ParseInt64(parts[2], &skip));
    if (!ok) {
      std::fprintf(stderr, "bad --failpoints entry '%s' (want at:site[:skip])\n",
                   entry.c_str());
      return 2;
    }
    event.at_mutation = static_cast<int>(at);
    event.site = parts[1];
    event.skip_hits = skip;
    schedule.push_back(event);
  }

  // Live telemetry plumbing: the flight ring is always on (fixed memory,
  // lock-free writes); the bounded trace recorder forwards planner spans
  // into it.  Crash-signal handlers arm only when there is somewhere to
  // dump (--flight_dump).
  obs::MetricsRegistry metrics;
  obs::FlightRecorderOptions flight_options;
  flight_options.slots_per_ring =
      static_cast<int>(*flight_slots < 16 ? 16 : *flight_slots);
  obs::FlightRecorder flight(flight_options);
  obs::TraceRecorder trace_recorder;
  trace_recorder.set_max_events(8192);
  trace_recorder.AttachFlight(&flight);
  if (!flight_dump->empty()) {
    InstallFlightDumpHandlers(&flight, *flight_dump);
  }

  serve::ServiceOptions options;
  options.world = trace.world;
  options.ladder.slo_ms = *slo_ms;
  options.ladder.local_search.parallel.num_threads = static_cast<int>(*threads);
  options.journal_path = *journal_path;
  options.snapshot_path = *snapshot_path;
  options.snapshot_every = static_cast<int>(*snapshot_every);
  options.queue_capacity = static_cast<int>(*queue_capacity);
  options.shed_fraction = *shed_fraction;
  options.metrics = &metrics;
  options.trace = &trace_recorder;
  options.flight = &flight;
  options.flight_dump_path = *flight_dump;
  options.metrics_out = *metrics_out;
  options.metrics_every_ms = *metrics_every_ms;

  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);

  if (*statsz) {
    // Post-recovery inspection: open (replaying snapshot + journal),
    // publish once so usep.serve.* reflects the recovered state, print the
    // snapshot, and walk away without touching the files further.
    StatusOr<std::unique_ptr<serve::StreamingService>> opened =
        serve::StreamingService::Open(options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    (*opened)->PublishTelemetry();
    obs::WriteStatszJson(metrics.Snapshot(), std::cout);
    (*opened)->Abandon();
    return 0;
  }

  if (*chaos) {
    serve::ChaosOptions chaos_options;
    chaos_options.service = options;
    chaos_options.trace.num_mutations = static_cast<int>(trace.mutations.size());
    chaos_options.trace.seed = static_cast<uint64_t>(*gen_seed);
    chaos_options.schedule = schedule;
    chaos_options.batch_size = static_cast<int>(*batch);
    chaos_options.kill_at = static_cast<int>(*kill_at);
    const StatusOr<serve::ChaosResult> result = serve::RunChaos(chaos_options);
    if (!result.ok()) {
      std::fprintf(stderr, "chaos run FAILED: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("chaos: committed=%d rejected=%d shed=%d faults=%d "
                "validations=%d slo_misses=%d killed=%s journal_crashed=%s\n",
                result->committed, result->rejected, result->shed,
                result->faults, result->validations, result->slo_misses,
                result->killed ? "yes" : "no",
                result->journal_crashed ? "yes" : "no");
    std::printf("telemetry: flight_dumps=%d rung_changes=%d recoveries=%lld\n",
                result->flight_dumps, result->rung_changes,
                (long long)result->recoveries);
    std::printf("fingerprint: %016llx\n",
                (unsigned long long)result->final_fingerprint);
    std::printf("omega: %.3f\n", result->final_omega);
    if (*dump_flight && !flight_dump->empty()) {
      flight.DumpToFile(flight_dump->c_str(), "on_demand");
    }
    return 0;
  }

  // --- Plain serving loop --------------------------------------------------
  StatusOr<std::unique_ptr<serve::StreamingService>> opened =
      serve::StreamingService::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::StreamingService> service = std::move(*opened);
  if (service->recovery().replayed_records > 0 ||
      service->recovery().snapshot_loaded) {
    std::printf("recovered: snapshot=%s replayed=%llu%s\n",
                service->recovery().snapshot_loaded ? "yes" : "no",
                (unsigned long long)service->recovery().replayed_records,
                service->recovery().truncated_tail ? " (torn tail dropped)"
                                                   : "");
  }

  Stopwatch wall;
  int committed = 0;
  int rejected = 0;
  int shed = 0;
  int faults = 0;
  int tier_counts[4] = {0, 0, 0, 0};
  double max_process_ms = 0.0;
  bool interrupted = false;
  size_t submitted = 0;
  const int batch_size = *batch < 1 ? 1 : static_cast<int>(*batch);
  while (submitted < trace.mutations.size() || service->HasPending()) {
    if (g_shutdown_signal.load(std::memory_order_relaxed) != 0) {
      interrupted = true;
      break;
    }
    // Fill a burst, then drain one; queue-full rejections just stop the
    // burst early (the producer "retries" on the next lap).
    while (submitted < trace.mutations.size() &&
           service->queue_depth() < batch_size) {
      if (!service->Submit(trace.mutations[submitted]).ok()) break;
      ++submitted;
    }
    if (!service->HasPending()) continue;

    const size_t index = static_cast<size_t>(committed + rejected);
    std::vector<std::string> armed;
    for (const serve::FailpointEvent& event : schedule) {
      if (static_cast<size_t>(event.at_mutation) == index) {
        failpoint::Arm(event.site, event.skip_hits);
        armed.push_back(event.site);
      }
    }
    const StatusOr<serve::ProcessResult> step = service->ProcessNext();
    for (const std::string& site : armed) failpoint::Disarm(site);
    if (!step.ok()) {
      if (!service->journal_broken()) {
        std::fprintf(stderr, "%s\n", step.status().ToString().c_str());
        return 1;
      }
      // The operator restart: a torn append broke the journal, so reopen
      // from disk (truncating the tail) and resume from the last
      // acknowledged mutation.  Nothing committed is lost; the in-flight
      // mutation is resubmitted on the next lap.
      std::fprintf(stderr, "journal append failed; restarting: %s\n",
                   step.status().ToString().c_str());
      service->Abandon();
      opened = serve::StreamingService::Open(options);
      if (!opened.ok()) {
        std::fprintf(stderr, "restart failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      service = std::move(*opened);
      submitted = static_cast<size_t>(committed + rejected);
      continue;
    }
    if (step->seq == 0) {
      ++rejected;
      if (*verbose) {
        std::printf("rejected: %s\n", step->apply_status.ToString().c_str());
      }
      continue;
    }
    ++committed;
    if (step->shed) ++shed;
    faults += step->repair.faults;
    ++tier_counts[static_cast<int>(step->repair.tier)];
    if (step->process_ms > max_process_ms) max_process_ms = step->process_ms;
    if (*verbose) {
      std::printf("seq=%llu tier=%s omega=%.3f %.2fms%s\n",
                  (unsigned long long)step->seq,
                  serve::RepairTierName(step->repair.tier), step->repair.omega,
                  step->process_ms, step->shed ? " (shed)" : "");
    }
  }
  const double wall_seconds = wall.ElapsedSeconds();

  if (interrupted) {
    std::printf("\ninterrupted (signal %d): flushing and closing — "
                "%zu of %zu mutations consumed\n",
                g_shutdown_signal.load(std::memory_order_relaxed),
                static_cast<size_t>(committed + rejected),
                trace.mutations.size());
  }
  // Graceful shutdown: final snapshot + journal close (Close also publishes
  // the final telemetry snapshot to --metrics_out).  After this, a restart
  // resumes exactly where the stream stopped.
  const serve::SloWindowStats window = service->slo().Window();
  const int final_rung = static_cast<int>(service->slo().current_rung());
  const long long rung_changes = (long long)service->slo().rung_changes();
  const Status closed = service->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close: %s\n", closed.ToString().c_str());
    return 1;
  }

  std::printf("\n=== usep_serve summary ===\n");
  std::printf("mutations: committed=%d rejected=%d shed=%d (%.0f/s)\n",
              committed, rejected, shed,
              wall_seconds > 0.0 ? committed / wall_seconds : 0.0);
  std::printf("tiers: incremental=%d regional=%d admission=%d validity=%d; "
              "faults=%d\n",
              tier_counts[0], tier_counts[1], tier_counts[2], tier_counts[3],
              faults);
  const obs::Histogram* replan = metrics.GetHistogram(
      "usep.serve.replan_ms", obs::HistogramOptions{1e-2, 2.0, 24});
  std::printf("replan_ms: p50=%.2f p99=%.2f max=%.2f\n",
              replan->Quantile(0.5), replan->Quantile(0.99), max_process_ms);
  std::printf("slo window: p50=%.2fms p99=%.2fms rate=%.0f/s shed=%.2f "
              "rung=%d rung_changes=%lld\n",
              window.p50_ms, window.p99_ms, window.mutations_per_sec,
              window.shed_fraction, final_rung, rung_changes);
  std::printf("world: %d users, %d events; omega=%.3f assignments=%d\n",
              service->world().num_users(), service->world().num_events(),
              service->planning() != nullptr
                  ? service->planning()->total_utility()
                  : 0.0,
              service->plan_state().num_assignments());
  std::printf("fingerprint: %016llx\n",
              (unsigned long long)service->Fingerprint());

  if (!report_out->empty()) {
    obs::RunReport report;
    report.tool = "usep_serve";
    report.instance_label =
        trace_path->empty() ? StrFormat("gen:seed=%lld", (long long)*gen_seed)
                            : *trace_path;
    report.num_events = service->world().num_events();
    report.num_users = service->world().num_users();
    report.config.emplace_back("slo_ms", StrFormat("%g", *slo_ms));
    report.config.emplace_back("threads",
                               StrFormat("%lld", (long long)*threads));
    report.config.emplace_back("batch",
                               StrFormat("%lld", (long long)*batch));
    report.config.emplace_back("failpoints", *failpoints);
    report.metrics = metrics.Snapshot();
    std::string error;
    if (!report.WriteJsonFile(*report_out, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_out->c_str());
  }
  if (*dump_flight && !flight_dump->empty()) {
    if (flight.DumpToFile(flight_dump->c_str(), "on_demand")) {
      std::printf("wrote %s\n", flight_dump->c_str());
    } else {
      std::fprintf(stderr, "flight dump to %s failed\n", flight_dump->c_str());
      return 1;
    }
  }
  if (!sample_out->empty()) {
    obs::StackSampler& sampler = obs::StackSampler::Global();
    sampler.Stop();
    std::string error;
    if (sampler.WriteFolded(*sample_out, &error)) {
      std::printf("wrote %s (%llu samples)\n", sample_out->c_str(),
                  static_cast<unsigned long long>(sampler.SampleCount()));
    } else {
      std::fprintf(stderr, "folded-stack write failed: %s\n", error.c_str());
    }
  }
  return 0;
}
