// Explores the budget-factor trade-off the paper's Figure 3 documents:
// utility rises with f_b but saturates once event capacities (not budgets)
// become the binding constraint.  Useful for an EBSN operator asking "how
// far do users need to be willing to travel before the catalogue is the
// bottleneck?".
//
//   ./build/examples/budget_explorer [--num_events=N] [--num_users=N]

#include <cstdio>
#include <iostream>

#include "algo/planner_registry.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "gen/synthetic_generator.h"

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("budget_explorer");
  int64_t* num_events = flags.AddInt64("num_events", 40, "catalogue size");
  int64_t* num_users = flags.AddInt64("num_users", 400, "community size");
  int64_t* capacity = flags.AddInt64("capacity_mean", 8, "mean event capacity");
  int64_t* seed = flags.AddInt64("seed", 7, "generator seed");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  TablePrinter table({"f_b", "Omega(A)", "assignments", "seat_fill_%",
                      "avg_budget_used_%"});
  for (const double fb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    GeneratorConfig config;
    config.num_events = static_cast<int>(*num_events);
    config.num_users = static_cast<int>(*num_users);
    config.capacity_mean = static_cast<double>(*capacity);
    config.budget_factor = fb;
    config.seed = static_cast<uint64_t>(*seed);
    const StatusOr<Instance> instance = GenerateSyntheticInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
      return 1;
    }

    const PlannerResult result =
        MakePlanner(PlannerKind::kDeDpoRg)->Plan(*instance);

    int64_t seats = 0;
    for (EventId v = 0; v < instance->num_events(); ++v) {
      seats += std::min(instance->event(v).capacity, instance->num_users());
    }
    double budget_used = 0.0;
    int planned_users = 0;
    for (UserId u = 0; u < instance->num_users(); ++u) {
      const Schedule& schedule = result.planning.schedule(u);
      if (schedule.empty()) continue;
      ++planned_users;
      budget_used += static_cast<double>(schedule.route_cost()) /
                     static_cast<double>(instance->user(u).budget);
    }

    table.AddRow(
        {StrFormat("%.2f", fb),
         StrFormat("%.1f", result.planning.total_utility()),
         StrFormat("%d", result.planning.total_assignments()),
         StrFormat("%.1f",
                   100.0 * result.planning.total_assignments() / seats),
         StrFormat("%.1f", planned_users > 0
                               ? 100.0 * budget_used / planned_users
                               : 0.0)});
  }

  std::printf("DeDPO+RG on |V|=%lld, |U|=%lld, mean c_v=%lld\n",
              (long long)*num_events, (long long)*num_users,
              (long long)*capacity);
  table.Print(std::cout);
  std::printf("\nReading: Omega climbs with f_b, then flattens once "
              "seat_fill saturates — the paper's Figure 3 shape.\n");
  return 0;
}
