// Workload-generator CLI: produce a Table 7 synthetic instance (or a
// simulated Meetup city) from command-line knobs, report its statistics,
// and write it as a USEP-INSTANCE file that usep_solve (or any downstream
// tool) can consume.
//
//   ./build/examples/usep_generate --num_events=50 --num_users=500
//       --conflict_ratio=0.5 --output=/tmp/synthetic.instance
//   ./build/examples/usep_generate --city=vancouver --output=/tmp/van.instance

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "ebsn/meetup_simulator.h"
#include "gen/synthetic_generator.h"
#include "gen/workload_report.h"
#include "io/instance_io.h"

int main(int argc, char** argv) {
  using namespace usep;

  FlagSet flags("usep_generate");
  std::string* output = flags.AddString("output", "", "instance file to write");
  std::string* city =
      flags.AddString("city", "", "vancouver|auckland|singapore (overrides "
                                  "the synthetic knobs below)");
  int64_t* num_events = flags.AddInt64("num_events", 100, "|V|");
  int64_t* num_users = flags.AddInt64("num_users", 5000, "|U|");
  std::string* utility_distribution = flags.AddString(
      "utility_distribution", "uniform", "uniform | normal | power:<a>");
  double* capacity_mean = flags.AddDouble("capacity_mean", 50.0, "mean c_v");
  std::string* capacity_distribution =
      flags.AddString("capacity_distribution", "uniform", "uniform | normal");
  double* budget_factor = flags.AddDouble("budget_factor", 2.0, "f_b");
  std::string* budget_distribution =
      flags.AddString("budget_distribution", "uniform", "uniform | normal");
  double* conflict_ratio = flags.AddDouble("conflict_ratio", 0.25, "cr");
  std::string* conflict_strategy = flags.AddString(
      "conflict_strategy", "random_windows", "random_windows | clique");
  bool* travel_aware = flags.AddBool(
      "travel_aware", false, "use the travel-time-aware conflict policy");
  int64_t* seed = flags.AddInt64("seed", 20150531, "generator seed");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (output->empty()) {
    std::fprintf(stderr, "--output is required\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  StatusOr<Instance> instance = Status::Internal("unreachable");
  if (!city->empty()) {
    CityConfig config;
    const std::string lower = AsciiToLower(*city);
    if (lower == "vancouver") {
      config = VancouverConfig();
    } else if (lower == "auckland") {
      config = AucklandConfig();
    } else if (lower == "singapore") {
      config = SingaporeConfig();
    } else {
      std::fprintf(stderr, "unknown city '%s'\n", city->c_str());
      return 2;
    }
    MeetupSimOptions options;
    options.budget_factor = *budget_factor;
    options.budget_distribution = *budget_distribution;
    options.capacity_distribution = *capacity_distribution;
    options.seed = static_cast<uint64_t>(*seed);
    if (*travel_aware) {
      options.conflict_policy = ConflictPolicy::kTravelTimeAware;
    }
    instance = SimulateCity(config, options);
  } else {
    GeneratorConfig config;
    config.num_events = static_cast<int>(*num_events);
    config.num_users = static_cast<int>(*num_users);
    config.utility_distribution = *utility_distribution;
    config.capacity_mean = *capacity_mean;
    config.capacity_distribution = *capacity_distribution;
    config.budget_factor = *budget_factor;
    config.budget_distribution = *budget_distribution;
    config.conflict_ratio = *conflict_ratio;
    config.seed = static_cast<uint64_t>(*seed);
    if (AsciiToLower(*conflict_strategy) == "clique") {
      config.conflict_strategy = ConflictStrategy::kClique;
    } else if (AsciiToLower(*conflict_strategy) != "random_windows") {
      std::fprintf(stderr, "unknown conflict strategy '%s'\n",
                   conflict_strategy->c_str());
      return 2;
    }
    if (*travel_aware) {
      config.conflict_policy = ConflictPolicy::kTravelTimeAware;
    }
    std::printf("%s\n", config.ToString().c_str());
    instance = GenerateSyntheticInstance(config);
  }

  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", AnalyzeInstance(*instance).ToString().c_str());

  const Status wrote = WriteInstanceFile(*instance, *output);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output->c_str());
  return 0;
}
